package cqtrees

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/core"
)

// PreparedQuery is a conjunctive query compiled for repeated evaluation:
// parsing, acyclicity analysis, signature classification (Theorem 1.1) and
// strategy planning happen once, in Prepare; the resulting object
// evaluates against any number of documents paying only the per-call cost.
//
// This operationalizes the paper's cost split: classification and planning
// depend only on the query, evaluation is the per-tree hot path — and the
// per-tree indexing cost has its own once-only artifact, the Document (see
// Index). A server answering many requests should Prepare each distinct
// query once and Index each distinct document once; all methods are safe
// for concurrent use, and per-call scratch state (domain tables, semijoin
// buffers, valuation maps) is pooled internally rather than re-allocated.
//
// Three evaluation tiers exist:
//
//   - Iterators: Tuples and NodeSeq return Go range-over-func iterators
//     over a shared *Document; breaking out of the loop stops the
//     underlying streaming engine immediately.
//   - Error-returning: BoolErr, AllErr and NodesErr evaluate against a
//     *Document and report ErrNotMonadic / context cancellation as errors
//     instead of panicking.
//   - Legacy *Tree methods: Bool, All, Nodes, ForEachTuple, ForEachNode
//     take a *Tree, resolve it through a weak per-query document cache,
//     and preserve their original contracts (including the panic on
//     non-monadic Nodes) with byte-identical results.
type PreparedQuery struct {
	p *core.Prepared
	// parallel is the worker count for materialized enumeration (All,
	// Nodes, AllErr, NodesErr); 0 or 1 means sequential. Set via
	// WithParallelism, overridable per call with WithWorkers.
	parallel int
}

// Prepare compiles q for repeated evaluation. The query is cloned
// internally, so the caller may keep mutating q afterwards without
// affecting the PreparedQuery.
func Prepare(q *Query) (*PreparedQuery, error) {
	p, err := core.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{p: p}, nil
}

// MustPrepare is Prepare that panics on error; for tests and examples.
func MustPrepare(q *Query) *PreparedQuery {
	pq, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return pq
}

// Compile parses the rule notation and prepares the query in one step,
// in the spirit of regexp.Compile:
//
//	pq, err := cqtrees.Compile("Q(y) <- A(x), Child+(x, y), B(y)")
//	doc := cqtrees.Index(t)
//	for v := range pq.NodeSeq(doc) {
//		fmt.Println(v)
//	}
func Compile(src string) (*PreparedQuery, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Prepare(q)
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *PreparedQuery {
	pq, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return pq
}

// WithParallelism returns a handle on the same compiled query whose
// materialized enumeration calls (All/Nodes and AllErr/NodesErr) shard the
// outer candidate loop across the given number of worker goroutines (each
// worker borrows its own pooled evaluation scratch). The receiver is not
// modified; both handles share the compiled plan and scratch pool and
// remain safe for concurrent use.
//
// workers <= 1 restores sequential evaluation: 0 and 1 are equivalent,
// and negative counts are rejected by clamping to 0 (they are never
// stored). Parallelism applies to All under the acyclic and X-property
// strategies and to Nodes under the X-property strategy; backtracking
// evaluation is inherently sequential and ignores it, and Nodes on an
// acyclic query is always sequential (its fast path returns the
// semijoin-reduced head set directly, already O(answer) — there is no
// outer loop to shard). Streaming (ForEachTuple/ForEachNode, Tuples,
// NodeSeq) is always sequential — the callback contract is
// single-goroutine.
func (pq *PreparedQuery) WithParallelism(workers int) *PreparedQuery {
	if workers < 0 {
		workers = 0
	}
	return &PreparedQuery{p: pq.p, parallel: workers}
}

// EvalOption tunes one evaluation call of the Document-based tiers
// (Tuples, NodeSeq, BoolErr, AllErr, NodesErr).
type EvalOption func(*evalConfig)

type evalConfig struct {
	ctx     context.Context
	workers int
}

// WithContext attaches a context to the evaluation. Cancellation is
// checked once per outer-candidate-loop iteration, in both sequential and
// sharded parallel enumeration (and at every search-node expansion under
// the backtracking strategy), so evaluation stops within one outer
// iteration of the cancel. The error-returning methods then report
// ctx.Err() and discard the partial result; the iterator methods simply
// stop yielding.
func WithContext(ctx context.Context) EvalOption {
	return func(c *evalConfig) { c.ctx = ctx }
}

// WithWorkers overrides the handle's parallelism (see WithParallelism)
// for one call. As there, 0 and 1 both mean sequential and negative
// counts clamp to 0.
func WithWorkers(workers int) EvalOption {
	return func(c *evalConfig) {
		if workers < 0 {
			workers = 0
		}
		c.workers = workers
	}
}

// docOpts folds the handle defaults and per-call options into the core
// enumeration options.
func (pq *PreparedQuery) docOpts(opts []EvalOption) core.EnumOptions {
	c := evalConfig{workers: pq.parallel}
	for _, o := range opts {
		o(&c)
	}
	return core.EnumOptions{Parallel: c.workers, Ctx: c.ctx}
}

func (pq *PreparedQuery) opts() core.EnumOptions {
	return core.EnumOptions{Parallel: pq.parallel}
}

// arity returns the number of head variables of the compiled query.
func (pq *PreparedQuery) arity() int { return len(pq.p.Query().Head) }

// ---- Document tier: iterators --------------------------------------------

// Tuples returns an iterator over the distinct answer tuples of the
// compiled query on doc, streamed from the underlying engines without
// materializing the answer relation:
//
//	for tuple := range pq.Tuples(doc) {
//		use(tuple)
//		if enough() {
//			break // stops the engine immediately
//		}
//	}
//
// Each yielded tuple is freshly allocated and owned by the consumer (safe
// for slices.Collect); use ForEachTuple for the zero-copy streaming
// contract. Tuples arrive in a strategy-dependent order (AllErr sorts; this
// does not). For Boolean queries one empty tuple is yielded if the query is
// satisfiable. If a WithContext context is cancelled mid-iteration the
// sequence just stops — use AllErr to observe the cancellation error.
func (pq *PreparedQuery) Tuples(doc *Document, opts ...EvalOption) iter.Seq[[]NodeID] {
	o := pq.docOpts(opts)
	return func(yield func([]NodeID) bool) {
		pq.p.ForEachTupleDoc(doc, o, func(tuple []NodeID) bool {
			cp := make([]NodeID, len(tuple))
			copy(cp, tuple)
			return yield(cp)
		})
	}
}

// NodeSeq returns an iterator over the answer nodes of a monadic compiled
// query on doc (in increasing NodeID order under the acyclic and
// X-property strategies, discovery order under backtracking); it panics
// with an error wrapping ErrNotMonadic if the query is not monadic —
// NodesErr is the non-panicking variant. Breaking out of the loop stops
// the engine immediately; a cancelled WithContext context stops the
// sequence silently.
func (pq *PreparedQuery) NodeSeq(doc *Document, opts ...EvalOption) iter.Seq[NodeID] {
	if pq.arity() != 1 {
		panic(fmt.Errorf("cqtrees: NodeSeq on %d-ary query: %w", pq.arity(), ErrNotMonadic))
	}
	o := pq.docOpts(opts)
	return func(yield func(NodeID) bool) {
		pq.p.ForEachNodeDoc(doc, o, yield)
	}
}

// ---- Document tier: error-returning evaluation ---------------------------

// BoolErr decides Boolean satisfaction of the compiled query on doc. A
// non-nil error is only ever the WithContext context's cancellation error.
func (pq *PreparedQuery) BoolErr(doc *Document, opts ...EvalOption) (bool, error) {
	return pq.p.BoolDoc(doc, pq.docOpts(opts))
}

// AllErr enumerates the distinct answer tuples of the compiled query on
// doc in lexicographic NodeID order (for Boolean queries: one empty tuple
// if satisfiable). On cancellation the partial result is discarded and the
// context's error returned.
func (pq *PreparedQuery) AllErr(doc *Document, opts ...EvalOption) ([][]NodeID, error) {
	return pq.p.AllDoc(doc, pq.docOpts(opts))
}

// NodesErr answers a monadic (unary) compiled query on doc with the sorted
// answer node set. It returns an error wrapping ErrNotMonadic if the query
// is not monadic — replacing the legacy "panics if not monadic" contract —
// and the context's error on cancellation.
func (pq *PreparedQuery) NodesErr(doc *Document, opts ...EvalOption) ([]NodeID, error) {
	return pq.p.MonadicDoc(doc, pq.docOpts(opts))
}

// ---- legacy *Tree tier ----------------------------------------------------

// Bool decides Boolean satisfaction of the compiled query on t.
func (pq *PreparedQuery) Bool(t *Tree) bool { return pq.p.Bool(t) }

// All enumerates the distinct answer tuples of the compiled query on t in
// lexicographic NodeID order (for Boolean queries: one empty tuple if
// satisfiable). The work is output-sensitive: candidates are pruned to one
// shared arc-consistent (resp. semijoin-reduced) prevaluation, and tuple
// membership checks are incremental rather than from-scratch.
func (pq *PreparedQuery) All(t *Tree) [][]NodeID { return pq.p.AllOpt(t, pq.opts()) }

// Nodes answers a monadic (unary) compiled query with the sorted answer
// node set; it panics if the query is not monadic (NodesErr is the
// error-returning variant).
func (pq *PreparedQuery) Nodes(t *Tree) []NodeID { return pq.p.MonadicOpt(t, pq.opts()) }

// ForEachTuple streams the distinct answer tuples of the compiled query on
// t without materializing the answer relation: fn is called once per tuple
// and enumeration stops as soon as fn returns false, so existence checks
// and prefix-limited scans cost only the answers actually consumed. The
// tuple slice is reused between calls — copy it to retain (Tuples yields
// owned copies instead). Tuples arrive in a strategy-dependent order (All
// sorts; this does not). For Boolean queries fn is called once with an
// empty tuple if the query is satisfiable.
func (pq *PreparedQuery) ForEachTuple(t *Tree, fn func(tuple []NodeID) bool) {
	pq.p.ForEachTuple(t, fn)
}

// ForEachNode streams the answer nodes of a monadic compiled query (in
// increasing NodeID order under the acyclic and X-property strategies);
// it panics if the query is not monadic. fn returns false to stop early.
func (pq *PreparedQuery) ForEachNode(t *Tree, fn func(v NodeID) bool) {
	pq.p.ForEachNode(t, fn)
}

// Plan reports the evaluation strategy and Theorem 1.1 classification
// compiled into the query.
func (pq *PreparedQuery) Plan() Plan { return pq.p.Plan() }

// Query returns the compiled query (a private clone; treat as read-only).
func (pq *PreparedQuery) Query() *Query { return pq.p.Query() }

// String renders the compiled query with its plan.
func (pq *PreparedQuery) String() string {
	return pq.p.Query().String() + " [" + pq.p.Plan().String() + "]"
}
