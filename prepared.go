package cqtrees

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/core"
)

// PreparedQuery is a conjunctive query compiled for repeated evaluation:
// parsing, acyclicity analysis, signature classification (Theorem 1.1) and
// strategy planning happen once, in Prepare; the resulting object
// evaluates against any number of documents paying only the per-call cost.
//
// This operationalizes the paper's cost split: classification and planning
// depend only on the query, evaluation is the per-tree hot path — and the
// per-tree indexing cost has its own once-only artifact, the Document (see
// Index). A server answering many requests should Prepare each distinct
// query once and Index each distinct document once; all methods are safe
// for concurrent use, and per-call scratch state (domain tables, semijoin
// buffers, valuation maps) is pooled internally rather than re-allocated.
//
// Three evaluation tiers exist:
//
//   - Iterators: Tuples and NodeSeq return Go range-over-func iterators
//     over a shared *Document; breaking out of the loop stops the
//     underlying streaming engine immediately.
//   - Error-returning: BoolErr, AllErr and NodesErr evaluate against a
//     *Document and report ErrNotMonadic / context cancellation as errors
//     instead of panicking.
//   - Legacy *Tree methods: Bool, All, Nodes, ForEachTuple, ForEachNode
//     take a *Tree, resolve it through a weak per-query document cache,
//     and preserve their original contracts (including the panic on
//     non-monadic Nodes) with byte-identical results.
type PreparedQuery struct {
	p *core.Prepared
	// parallel is the worker count for materialized enumeration (All,
	// Nodes, AllErr, NodesErr); 0 or 1 means sequential. Set via
	// WithParallelism, overridable per call with WithWorkers.
	parallel int
}

// Prepare compiles q for repeated evaluation. The query is cloned
// internally, so the caller may keep mutating q afterwards without
// affecting the PreparedQuery.
func Prepare(q *Query) (*PreparedQuery, error) {
	p, err := core.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{p: p}, nil
}

// MustPrepare is Prepare that panics on error; for tests and examples.
func MustPrepare(q *Query) *PreparedQuery {
	pq, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return pq
}

// Compile parses the rule notation and prepares the query in one step,
// in the spirit of regexp.Compile:
//
//	pq, err := cqtrees.Compile("Q(y) <- A(x), Child+(x, y), B(y)")
//	doc := cqtrees.Index(t)
//	for v := range pq.NodeSeq(doc) {
//		fmt.Println(v)
//	}
func Compile(src string) (*PreparedQuery, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Prepare(q)
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *PreparedQuery {
	pq, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return pq
}

// WithParallelism returns a handle on the same compiled query whose
// materialized enumeration calls (All/Nodes and AllErr/NodesErr) shard the
// outer candidate loop across the given number of worker goroutines (each
// worker borrows its own pooled evaluation scratch). The receiver is not
// modified; both handles share the compiled plan and scratch pool and
// remain safe for concurrent use.
//
// workers <= 1 restores sequential evaluation: 0 and 1 are equivalent,
// and negative counts are rejected by clamping to 0 (they are never
// stored). Parallelism applies to All under the acyclic and X-property
// strategies and to Nodes under the X-property strategy; backtracking
// evaluation is inherently sequential and ignores it, and Nodes on an
// acyclic query is always sequential (its fast path returns the
// semijoin-reduced head set directly, already O(answer) — there is no
// outer loop to shard). Streaming (ForEachTuple/ForEachNode, Tuples,
// NodeSeq) is always sequential — the callback contract is
// single-goroutine.
func (pq *PreparedQuery) WithParallelism(workers int) *PreparedQuery {
	if workers < 0 {
		workers = 0
	}
	return &PreparedQuery{p: pq.p, parallel: workers}
}

// EvalOption tunes one evaluation call of the Document-based tiers
// (Tuples, NodeSeq, BoolErr, AllErr, NodesErr, Paginate).
type EvalOption func(*evalConfig)

type evalConfig struct {
	ctx     context.Context
	workers int
	// order is the WithOrder spec: nil means no order requested; resolve
	// pads it to one direction per head position when ordering is active.
	order      []Dir
	limit      int
	offset     int
	cursorTok  string
	hasCursor  bool
	version    uint64
	hasVersion bool
}

// WithContext attaches a context to the evaluation. Cancellation is
// checked once per outer-candidate-loop iteration, in both sequential and
// sharded parallel enumeration (and at every search-node expansion under
// the backtracking strategy), so evaluation stops within one outer
// iteration of the cancel. The error-returning methods then report
// ctx.Err() and discard the partial result; the iterator methods simply
// stop yielding.
func WithContext(ctx context.Context) EvalOption {
	return func(c *evalConfig) { c.ctx = ctx }
}

// WithWorkers overrides the handle's parallelism (see WithParallelism)
// for one call. As there, 0 and 1 both mean sequential and negative
// counts clamp to 0.
func WithWorkers(workers int) EvalOption {
	return func(c *evalConfig) {
		if workers < 0 {
			workers = 0
		}
		c.workers = workers
	}
}

// WithOrder requests ordered enumeration: answer tuples stream in
// lexicographic document order over the head tuple, position i ascending
// or descending over pre-order ranks per dirs[i]. A spec shorter than the
// query's arity pads with Asc (so WithOrder() alone means "document
// order, all ascending"); a longer spec is an error wrapping
// ErrOrderArity. Ordered enumeration streams with no sort or buffering
// under the acyclic and X-property strategies — each pinned-descent level
// iterates its candidate bitset in the requested direction — and
// materializes + sorts under backtracking (order honored, document-order-
// optimal only). Ordered calls are sequential: parallelism is ignored.
//
// With an order in force, AllErr returns the requested order instead of
// lexicographic NodeID order, and Tuples/NodeSeq yield it directly.
func WithOrder(dirs ...Dir) EvalOption {
	if dirs == nil {
		dirs = []Dir{}
	}
	return func(c *evalConfig) { c.order = dirs }
}

// WithLimit stops enumeration after n answers have been delivered —
// inside the engine's descent, not by post-filtering — so a page costs
// only the answers on it. n <= 0 means unlimited. Paginate uses it as the
// page size (default DefaultPageSize).
func WithLimit(n int) EvalOption {
	return func(c *evalConfig) { c.limit = n }
}

// WithOffset skips the first n answers of the stream before any are
// delivered. The skipped answers are still enumerated (cost O(n)) —
// cursors are the O(depth) restart; use them for deep pagination.
func WithOffset(n int) EvalOption {
	return func(c *evalConfig) { c.offset = n }
}

// WithCursor resumes enumeration strictly after the answer a previous
// Paginate call recorded in its Page.Next token. The cursor carries its
// own order (an explicit WithOrder must agree or the call fails with
// ErrCursorMismatch), the query's fingerprint hash, and the document
// version it was minted against (checked against WithDocVersion when one
// is in force: ErrCursorStale on mismatch). Malformed tokens fail with
// ErrCursorMalformed. The error-returning tiers report these; the plain
// iterators (Tuples, NodeSeq) end the sequence immediately instead —
// they never panic on a hostile token.
func WithCursor(token string) EvalOption {
	return func(c *evalConfig) { c.cursorTok, c.hasCursor = token, true }
}

// WithDocVersion binds the evaluation to a document content version (see
// Corpus.Version): cursors minted by Paginate embed it, and an incoming
// WithCursor token whose version differs fails with ErrCursorStale.
// Corpus.Page injects the corpus version automatically; without one,
// version 0 is used and the staleness check is vacuous.
func WithDocVersion(v uint64) EvalOption {
	return func(c *evalConfig) { c.version, c.hasVersion = v, true }
}

// resolve folds the handle defaults and per-call options into the core
// enumeration options, validating order and cursor against the compiled
// query. The returned config carries the fully padded direction spec and
// document version for cursor minting.
func (pq *PreparedQuery) resolve(opts []EvalOption) (evalConfig, core.EnumOptions, error) {
	c := evalConfig{workers: pq.parallel}
	for _, o := range opts {
		o(&c)
	}
	o := core.EnumOptions{Parallel: c.workers, Ctx: c.ctx, Limit: c.limit, Offset: c.offset}
	k := pq.arity()
	ordered := c.order != nil || c.hasCursor
	if !ordered {
		return c, o, nil
	}
	if len(c.order) > k {
		return c, o, fmt.Errorf("cqtrees: %d order directions for %d-ary query: %w", len(c.order), k, ErrOrderArity)
	}
	if k > cursorMaxArity {
		return c, o, fmt.Errorf("cqtrees: ordered enumeration supports arity <= %d: %w", cursorMaxArity, ErrOrderArity)
	}
	dirs := make([]Dir, k)
	copy(dirs, c.order)
	if c.hasCursor {
		cur, err := decodeCursor(c.cursorTok)
		if err != nil {
			return c, o, err
		}
		if cur.qhash != fingerprintHash(pq.p.Query().Fingerprint()) {
			return c, o, fmt.Errorf("cqtrees: cursor minted by a different query: %w", ErrCursorMismatch)
		}
		if len(cur.ranks) != k {
			return c, o, fmt.Errorf("cqtrees: cursor arity %d, query arity %d: %w", len(cur.ranks), k, ErrCursorMismatch)
		}
		if c.order != nil {
			for i := range dirs {
				if dirs[i] != cur.dirs[i] {
					return c, o, fmt.Errorf("cqtrees: cursor minted under a different order: %w", ErrCursorMismatch)
				}
			}
		}
		copy(dirs, cur.dirs)
		if c.hasVersion && cur.version != c.version {
			return c, o, fmt.Errorf("cqtrees: cursor version %d, document version %d: %w", cur.version, c.version, ErrCursorStale)
		}
		o.After = cur.ranks
	}
	c.order = dirs
	if k > 0 {
		o.Order = make([]core.OrderDir, k)
		for i, d := range dirs {
			o.Order[i] = core.OrderDir(d)
		}
	}
	return c, o, nil
}

// docOpts folds the handle defaults and per-call options into the core
// enumeration options, reporting invalid order/cursor combinations.
func (pq *PreparedQuery) docOpts(opts []EvalOption) (core.EnumOptions, error) {
	_, o, err := pq.resolve(opts)
	return o, err
}

func (pq *PreparedQuery) opts() core.EnumOptions {
	return core.EnumOptions{Parallel: pq.parallel}
}

// arity returns the number of head variables of the compiled query.
func (pq *PreparedQuery) arity() int { return len(pq.p.Query().Head) }

// ---- Document tier: iterators --------------------------------------------

// Tuples returns an iterator over the distinct answer tuples of the
// compiled query on doc, streamed from the underlying engines without
// materializing the answer relation:
//
//	for tuple := range pq.Tuples(doc) {
//		use(tuple)
//		if enough() {
//			break // stops the engine immediately
//		}
//	}
//
// Each yielded tuple is freshly allocated and owned by the consumer (safe
// for slices.Collect); use ForEachTuple for the zero-copy streaming
// contract. Tuples arrive in a strategy-dependent order (AllErr sorts; this
// does not). For Boolean queries one empty tuple is yielded if the query is
// satisfiable. If a WithContext context is cancelled mid-iteration the
// sequence just stops — use AllErr to observe the cancellation error.
// Invalid order/cursor options likewise end the sequence before the first
// element (never a panic); use AllErr or Paginate to observe those errors.
func (pq *PreparedQuery) Tuples(doc *Document, opts ...EvalOption) iter.Seq[[]NodeID] {
	o, err := pq.docOpts(opts)
	return func(yield func([]NodeID) bool) {
		if err != nil {
			return
		}
		pq.p.ForEachTupleDoc(doc, o, func(tuple []NodeID) bool {
			cp := make([]NodeID, len(tuple))
			copy(cp, tuple)
			return yield(cp)
		})
	}
}

// NodeSeq returns an iterator over the answer nodes of a monadic compiled
// query on doc (in increasing NodeID order under the acyclic and
// X-property strategies, discovery order under backtracking); it panics
// with an error wrapping ErrNotMonadic if the query is not monadic —
// NodesErr is the non-panicking variant. Breaking out of the loop stops
// the engine immediately; a cancelled WithContext context stops the
// sequence silently, and so do invalid order/cursor options (observe
// those through NodesErr or Paginate — hostile cursor tokens never panic).
func (pq *PreparedQuery) NodeSeq(doc *Document, opts ...EvalOption) iter.Seq[NodeID] {
	if pq.arity() != 1 {
		panic(fmt.Errorf("cqtrees: NodeSeq on %d-ary query: %w", pq.arity(), ErrNotMonadic))
	}
	o, err := pq.docOpts(opts)
	return func(yield func(NodeID) bool) {
		if err != nil {
			return
		}
		pq.p.ForEachNodeDoc(doc, o, yield)
	}
}

// ---- Document tier: error-returning evaluation ---------------------------

// BoolErr decides Boolean satisfaction of the compiled query on doc. A
// non-nil error is the WithContext context's cancellation error or an
// invalid order/cursor option.
func (pq *PreparedQuery) BoolErr(doc *Document, opts ...EvalOption) (bool, error) {
	o, err := pq.docOpts(opts)
	if err != nil {
		return false, err
	}
	return pq.p.BoolDoc(doc, o)
}

// AllErr enumerates the distinct answer tuples of the compiled query on
// doc in lexicographic NodeID order (for Boolean queries: one empty tuple
// if satisfiable) — or, under WithOrder/WithCursor, in the requested
// document order. On cancellation the partial result is discarded and the
// context's error returned; invalid order/cursor options return their
// typed errors (ErrOrderArity, ErrCursorMalformed/Mismatch/Stale).
func (pq *PreparedQuery) AllErr(doc *Document, opts ...EvalOption) ([][]NodeID, error) {
	o, err := pq.docOpts(opts)
	if err != nil {
		return nil, err
	}
	return pq.p.AllDoc(doc, o)
}

// NodesErr answers a monadic (unary) compiled query on doc with the sorted
// answer node set (or the WithOrder order). It returns an error wrapping
// ErrNotMonadic if the query is not monadic — replacing the legacy "panics
// if not monadic" contract — the context's error on cancellation, and the
// typed cursor/order errors for invalid options.
func (pq *PreparedQuery) NodesErr(doc *Document, opts ...EvalOption) ([]NodeID, error) {
	o, err := pq.docOpts(opts)
	if err != nil {
		return nil, err
	}
	return pq.p.MonadicDoc(doc, o)
}

// ---- pagination -----------------------------------------------------------

// DefaultPageSize is Paginate's page size when no WithLimit is given.
const DefaultPageSize = 100

// Page is one page of a paginated enumeration.
type Page struct {
	// Tuples holds up to the page size answer tuples, in the requested
	// order (each freshly allocated and owned by the caller).
	Tuples [][]NodeID
	// Next is the opaque resume cursor for the following page, or "" when
	// this page ends the result set. Pass it back via WithCursor.
	Next string
}

// Paginate evaluates one page of the compiled query's answers on doc, in
// document order (WithOrder; all-ascending when absent or when resuming —
// the cursor carries its order). The page size is WithLimit (default
// DefaultPageSize); when more answers remain past the page, Page.Next
// holds a cursor that resumes strictly after the page's last tuple in
// O(depth + page) — no re-enumeration of earlier pages. Bind the cursor
// to document content with WithDocVersion (Corpus.Page does this
// automatically); a later call with a cursor from another version fails
// with ErrCursorStale, from another query or order with ErrCursorMismatch,
// and hostile tokens with ErrCursorMalformed — never a panic.
//
// WithOffset composes (applied once, before the page); Boolean queries
// have nothing to order and return an error.
func (pq *PreparedQuery) Paginate(doc *Document, opts ...EvalOption) (Page, error) {
	if pq.arity() == 0 {
		return Page{}, fmt.Errorf("cqtrees: Paginate on 0-ary query %q: %w", pq.p.Query().String(), ErrOrderArity)
	}
	cfg, o, err := pq.resolve(opts)
	if err != nil {
		return Page{}, err
	}
	if cfg.order == nil {
		// No explicit order and no cursor: document order, all ascending.
		cfg, o, err = pq.resolve(append(append([]EvalOption{}, opts...), WithOrder()))
		if err != nil {
			return Page{}, err
		}
	}
	limit := o.Limit
	if limit <= 0 {
		limit = DefaultPageSize
	}
	// Probe one answer past the page: an exactly-full final page is
	// complete, not truncated, and mints no cursor.
	o.Limit = limit + 1
	rows := make([][]NodeID, 0, min(limit, 1024))
	if err := pq.p.ForEachTupleDoc(doc, o, func(tuple []NodeID) bool {
		cp := make([]NodeID, len(tuple))
		copy(cp, tuple)
		rows = append(rows, cp)
		return true
	}); err != nil {
		return Page{}, err
	}
	page := Page{Tuples: rows}
	if len(rows) > limit {
		page.Tuples = rows[:limit]
		last := rows[limit-1]
		t := doc.Tree()
		c := cursor{
			qhash:   fingerprintHash(pq.p.Query().Fingerprint()),
			version: cfg.version,
			dirs:    cfg.order,
			ranks:   make([]int32, len(last)),
		}
		for i, v := range last {
			c.ranks[i] = t.Pre(v)
		}
		page.Next = encodeCursor(c)
	}
	return page, nil
}

// ---- legacy *Tree tier ----------------------------------------------------

// Bool decides Boolean satisfaction of the compiled query on t.
func (pq *PreparedQuery) Bool(t *Tree) bool { return pq.p.Bool(t) }

// All enumerates the distinct answer tuples of the compiled query on t in
// lexicographic NodeID order (for Boolean queries: one empty tuple if
// satisfiable). The work is output-sensitive: candidates are pruned to one
// shared arc-consistent (resp. semijoin-reduced) prevaluation, and tuple
// membership checks are incremental rather than from-scratch.
func (pq *PreparedQuery) All(t *Tree) [][]NodeID { return pq.p.AllOpt(t, pq.opts()) }

// Nodes answers a monadic (unary) compiled query with the sorted answer
// node set; it panics if the query is not monadic (NodesErr is the
// error-returning variant).
func (pq *PreparedQuery) Nodes(t *Tree) []NodeID { return pq.p.MonadicOpt(t, pq.opts()) }

// ForEachTuple streams the distinct answer tuples of the compiled query on
// t without materializing the answer relation: fn is called once per tuple
// and enumeration stops as soon as fn returns false, so existence checks
// and prefix-limited scans cost only the answers actually consumed. The
// tuple slice is reused between calls — copy it to retain (Tuples yields
// owned copies instead). Tuples arrive in a strategy-dependent order (All
// sorts; this does not). For Boolean queries fn is called once with an
// empty tuple if the query is satisfiable.
func (pq *PreparedQuery) ForEachTuple(t *Tree, fn func(tuple []NodeID) bool) {
	pq.p.ForEachTuple(t, fn)
}

// ForEachNode streams the answer nodes of a monadic compiled query (in
// increasing NodeID order under the acyclic and X-property strategies);
// it panics if the query is not monadic. fn returns false to stop early.
func (pq *PreparedQuery) ForEachNode(t *Tree, fn func(v NodeID) bool) {
	pq.p.ForEachNode(t, fn)
}

// Plan reports the evaluation strategy and Theorem 1.1 classification
// compiled into the query.
func (pq *PreparedQuery) Plan() Plan { return pq.p.Plan() }

// Query returns the compiled query (a private clone; treat as read-only).
func (pq *PreparedQuery) Query() *Query { return pq.p.Query() }

// String renders the compiled query with its plan.
func (pq *PreparedQuery) String() string {
	return pq.p.Query().String() + " [" + pq.p.Plan().String() + "]"
}
