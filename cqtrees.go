// Package cqtrees is the public API of this reproduction of "Conjunctive
// Queries over Trees" (Gottlob, Koch, Schulz; PODS 2004 / JACM 53(2),
// 2006). It re-exports the substrate types and wires the paper's results
// into a small, documented surface:
//
//   - Trees: parse (term syntax or XML), build, or generate unranked
//     labeled trees (ParseTree, ParseXML, NewTreeBuilder, ...).
//   - Queries: parse datalog-style conjunctive queries over the axes
//     Child, Child+, Child*, NextSibling, NextSibling+, NextSibling*,
//     Following (ParseQuery).
//   - Evaluation: Evaluate/EvaluateAll dispatch per the paper's
//     dichotomy — Yannakakis for acyclic queries, the Theorem 3.5
//     X-property algorithm for tractable signatures, MAC backtracking
//     otherwise. Classify exposes the Theorem 1.1 / Table I dichotomy.
//   - Prepared queries: Prepare compiles a query once (classification,
//     acyclicity analysis, planning) into a concurrency-safe PreparedQuery
//     that evaluates repeatedly without re-planning or re-allocating
//     evaluation state — the paper's query-only cost, paid once.
//   - Documents: Index builds every tree-derived structure (orderings,
//     label bitsets, full-node-set words) once into an immutable,
//     concurrency-safe Document shared by all strategies — the per-tree
//     cost, paid once. Together Prepare and Index make the paper's cost
//     split fully symmetric: prepare the query, prepare the data, execute.
//   - Execution tiers: range-over-func iterators (Tuples, NodeSeq),
//     error-returning evaluation (BoolErr, AllErr, NodesErr — typed
//     ErrNotMonadic instead of panics, context cancellation via
//     WithContext), and the legacy *Tree methods, which keep working
//     unchanged over a weak per-query document cache.
//   - Corpora: NewCorpus manages a fleet of named Documents (add, remove,
//     swap, memory accounting with optional LRU eviction) and fans
//     prepared queries across all or a subset of them with a bounded
//     worker pool, streaming per-document results (Corpus.Bool/Nodes/
//     Tuples and the *Set variants). cmd/cqserve exposes the same engine
//     over HTTP.
//   - Expressiveness: ToAPQ translates any conjunctive query into an
//     equivalent acyclic positive query (Theorem 6.10); ToXPath renders
//     monadic APQs as Core-XPath expressions (Remark 6.1).
//
// Example (index once, query many):
//
//	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B))"))
//	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
//	for tuple := range pq.Tuples(doc) {
//		fmt.Println(tuple) // both B nodes
//	}
package cqtrees

import (
	"io"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// Re-exported core types. Methods on these types are documented in the
// internal packages; the aliases keep one import path for users.
type (
	// Tree is an unranked labeled tree (§2).
	Tree = tree.Tree
	// NodeID identifies a tree node.
	NodeID = tree.NodeID
	// TreeBuilder constructs trees top-down.
	TreeBuilder = tree.Builder
	// Query is a conjunctive query over trees (§2).
	Query = cq.Query
	// Var is a query variable.
	Var = cq.Var
	// Axis is a binary structure relation (Child, Child+, ..., Following).
	Axis = axis.Axis
	// APQ is an acyclic positive query: a union of acyclic CQs (§6).
	APQ = rewrite.APQ
	// Classification is a Theorem 1.1 dichotomy verdict.
	Classification = core.Classification
	// Plan describes the evaluation strategy chosen for a query.
	Plan = core.Plan
	// XPathExpr is a positive Core-XPath expression (Remark 6.1).
	XPathExpr = xpath.Expr
)

// NilNode is the "no node" sentinel.
const NilNode = tree.NilNode

// Axes of the paper's set Ax.
const (
	Child           = axis.Child
	ChildPlus       = axis.ChildPlus // Descendant
	ChildStar       = axis.ChildStar // Descendant-or-self
	NextSibling     = axis.NextSibling
	NextSiblingPlus = axis.NextSiblingPlus // Following-sibling
	NextSiblingStar = axis.NextSiblingStar
	Following       = axis.Following
)

// ParseTree parses the term syntax for trees, e.g. "A(B,C(D|E))".
func ParseTree(src string) (*Tree, error) { return tree.ParseTerm(src) }

// MustParseTree panics on parse errors; for tests and examples.
func MustParseTree(src string) *Tree { return tree.MustParseTerm(src) }

// ParseXML reads an XML document as a tree (element names become labels).
func ParseXML(r io.Reader) (*Tree, error) { return tree.ParseXML(r) }

// NewTreeBuilder returns a builder with a size hint.
func NewTreeBuilder(hint int) *TreeBuilder { return tree.NewBuilder(hint) }

// ParseQuery parses the datalog-style rule notation, e.g.
//
//	Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z).
func ParseQuery(src string) (*Query, error) { return cq.Parse(src) }

// MustParseQuery panics on parse errors.
func MustParseQuery(src string) *Query { return cq.MustParse(src) }

// sharedEngine backs the one-shot Evaluate* functions: a package-level,
// goroutine-safe engine whose plan cache (keyed by query fingerprint)
// means repeated one-shot calls with the same query classify and plan it
// only once. Prepare gives explicit control over the compiled query's
// lifetime instead.
var sharedEngine = core.NewEngine()

// Evaluate decides Boolean satisfaction of q on t using the best
// applicable algorithm (see PlanFor).
func Evaluate(t *Tree, q *Query) bool {
	return sharedEngine.EvalBoolean(t, q)
}

// EvaluateAll enumerates the distinct answer tuples of q on t.
func EvaluateAll(t *Tree, q *Query) [][]NodeID {
	return sharedEngine.EvalAll(t, q)
}

// EvaluateNodes answers a monadic (unary) query.
func EvaluateNodes(t *Tree, q *Query) []NodeID {
	return sharedEngine.EvalMonadic(t, q)
}

// PlanFor explains which algorithm Evaluate would use for q and why.
func PlanFor(q *Query) Plan { return sharedEngine.PlanFor(q) }

// Classify reports the complexity side of the signature per Theorem 1.1:
// polynomial time iff all axes share an X-property order, NP-complete
// otherwise, with the witnessing order or the relevant paper theorem.
func Classify(axes []Axis) Classification { return core.Classify(axes) }

// ClassifyQuery classifies the signature used by q.
func ClassifyQuery(q *Query) Classification { return core.ClassifyQuery(q) }

// TableI renders the paper's Table I (complexities of all one- and
// two-axis signatures) as text.
func TableI() string { return core.FormatTableI() }

// ToAPQ translates q into an equivalent acyclic positive query over the
// axes extended with Child+ and NextSibling+ (Theorem 6.10). The result
// can be exponentially larger (Theorem 7.1 shows this is unavoidable).
func ToAPQ(q *Query) (*APQ, error) {
	return rewrite.TranslateCQ(q, rewrite.Options{})
}

// ToXPath renders a monadic conjunctive query as a union of positive
// Core-XPath expressions via the APQ translation (Remark 6.1).
func ToXPath(q *Query) ([]XPathExpr, error) {
	apq, err := ToAPQ(q)
	if err != nil {
		return nil, err
	}
	return xpath.FromAPQ(apq)
}

// ParseXPath parses a Core-XPath expression, e.g.
// "//A[child::B]/following::C".
func ParseXPath(src string) (XPathExpr, error) { return xpath.Parse(src) }

// EvaluateXPath evaluates an XPath expression from the root.
func EvaluateXPath(t *Tree, e XPathExpr) []NodeID { return xpath.EvalFromRoot(t, e) }
