package cqtrees

// BenchmarkDocumentReuse: the index-once/query-many contract. Each
// iteration plays a server handling one fresh document with N distinct
// prepared queries. The document path calls Index once and evaluates every
// query against the shared *Document; the tree-pointer path uses the
// legacy *Tree methods, whose weak document cache is per PreparedQuery
// when prepared standalone — so it pays one tree-index construction per
// query. Both sub-benchmarks assert the exact index-build count via the
// consistency package's instrumentation counter (b.Fatalf on mismatch), so
// the CI smoke run also guards the reuse guarantee, and ReportAllocs
// exposes the allocation gap.
//
// The kernel rank tables (parent/first-child/sibling pre-rank arrays and
// the internal-node words behind consistency.Image/Preimage) are part of
// the same TreeIndex construction, so these assertions also prove the
// bulk-revise kernels add zero extra index builds: the counts below are
// unchanged from before the tables existed.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/consistency"
	"repro/internal/tree"
)

var docReuseQueries = []string{
	"Q(y) <- A(x), Child+(x, y), B(y)",
	"Q(y) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)",
	"Q(y) <- B(y), Child(y, z), C(z)",
	"Q(y) <- C(y), Following(x, y), A(x)",
}

func BenchmarkDocumentReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 4000, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	// Expected answer counts, for self-checking both paths.
	want := make([]int, len(docReuseQueries))
	for i, src := range docReuseQueries {
		want[i] = len(MustCompile(src).Nodes(tr))
	}

	b.Run(fmt.Sprintf("document/queries=%d", len(docReuseQueries)), func(b *testing.B) {
		b.ReportAllocs()
		start := consistency.IndexBuildCount()
		for i := 0; i < b.N; i++ {
			doc := Index(tr)
			for j, src := range docReuseQueries {
				pq := MustCompile(src)
				nodes, err := pq.NodesErr(doc)
				if err != nil || len(nodes) != want[j] {
					b.Fatalf("query %d: %d nodes (err %v), want %d", j, len(nodes), err, want[j])
				}
			}
		}
		if builds := consistency.IndexBuildCount() - start; builds != int64(b.N) {
			b.Fatalf("document path built tree indexes %d times over %d iterations, want exactly %d (one per document)",
				builds, b.N, b.N)
		}
	})

	b.Run(fmt.Sprintf("tree-pointer/queries=%d", len(docReuseQueries)), func(b *testing.B) {
		b.ReportAllocs()
		start := consistency.IndexBuildCount()
		for i := 0; i < b.N; i++ {
			for j, src := range docReuseQueries {
				pq := MustCompile(src)
				if nodes := pq.Nodes(tr); len(nodes) != want[j] {
					b.Fatalf("query %d: %d nodes, want %d", j, len(nodes), want[j])
				}
			}
		}
		wantBuilds := int64(b.N * len(docReuseQueries))
		if builds := consistency.IndexBuildCount() - start; builds != wantBuilds {
			b.Fatalf("tree-pointer path built tree indexes %d times, want %d (one per prepared query)",
				builds, wantBuilds)
		}
	})
}
