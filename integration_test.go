package cqtrees

// Cross-module integration properties: random (possibly cyclic) queries
// over the full axis set Ax, evaluated three ways — general engine,
// Theorem 6.10 APQ translation, and (for monadic queries) the XPath
// rendering — must agree on random trees.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/tree"
	"repro/internal/xpath"
)

func randomPaperQuery(rng *rand.Rand, nv, na int) *cq.Query {
	q := cq.New()
	vars := make([]cq.Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < na; i++ {
		x := rng.Intn(nv)
		y := rng.Intn(nv)
		if x == y {
			y = (y + 1) % nv
		}
		q.AddAtom(axis.PaperAxes[rng.Intn(len(axis.PaperAxes))], vars[x], vars[y])
	}
	labels := []string{"A", "B", "C"}
	for i := 0; i < 1+rng.Intn(2); i++ {
		q.AddLabel(labels[rng.Intn(len(labels))], vars[rng.Intn(nv)])
	}
	return q
}

func TestIntegrationEngineVsAPQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	engine := core.NewEngine()
	executed := 0
	defer func() {
		if executed < 20 {
			t.Errorf("only %d of 40 samples translated within budget", executed)
		}
	}()
	for trial := 0; trial < 40; trial++ {
		q := randomPaperQuery(rng, 3+rng.Intn(2), 2+rng.Intn(3))
		apq, err := rewrite.TranslateCQ(q, rewrite.Options{MaxQueries: 1 << 14})
		if err != nil {
			continue // blowup budget exceeded: skip this sample
		}
		executed++
		if !apq.IsAcyclic() {
			t.Fatalf("trial %d: APQ not acyclic for %s", trial, q)
		}
		for sub := 0; sub < 8; sub++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(10), MaxChildren: 3,
				Alphabet: []string{"A", "B", "C"},
			})
			want := engine.EvalBoolean(tr, q)
			got := apq.EvalBoolean(tr)
			if want != got {
				t.Fatalf("trial %d: engine %v, APQ %v\nquery %s\nAPQ %s\ntree %s",
					trial, want, got, q, apq, tr)
			}
		}
	}
}

func TestIntegrationMonadicXPathAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7 * 13))
	engine := core.NewEngine()
	for trial := 0; trial < 25; trial++ {
		q := randomPaperQuery(rng, 3, 2+rng.Intn(2))
		q.SetHead(cq.Var(rng.Intn(q.NumVars())))
		apq, err := rewrite.TranslateCQ(q, rewrite.Options{MaxQueries: 1 << 14})
		if err != nil {
			continue
		}
		exprs, err := xpath.FromAPQ(apq)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for sub := 0; sub < 5; sub++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(10), MaxChildren: 3,
				Alphabet: []string{"A", "B", "C"},
			})
			want := map[tree.NodeID]bool{}
			for _, v := range engine.EvalMonadic(tr, q) {
				want[v] = true
			}
			got := map[tree.NodeID]bool{}
			for _, e := range exprs {
				for _, v := range xpath.EvalFromRoot(tr, e) {
					got[v] = true
				}
			}
			if len(want) != len(got) {
				t.Fatalf("trial %d: CQ %d nodes, XPath %d\nquery %s\ntree %s",
					trial, len(want), len(got), q, tr)
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("trial %d: node %d missing from XPath union", trial, v)
				}
			}
		}
	}
}

func TestIntegrationStructuralLabels(t *testing.T) {
	// The Gottlob-Koch FirstChild extension through the public pipeline:
	// structural labels behave like ordinary unary relations everywhere.
	base := MustParseTree("A(B(D,E),C)")
	tr := tree.WithStructuralLabels(base)
	q := MustParseQuery("Q(x) <- @first(x), Child(p, x), A(p)")
	got := EvaluateNodes(tr, q)
	if len(got) != 1 || !tr.HasLabel(got[0], "B") {
		t.Fatalf("first child of A should be B: %v", got)
	}
	leafQ := MustParseQuery("Q(x) <- @leaf(x), Following(w, x), @first(w)")
	if n := len(EvaluateNodes(tr, leafQ)); n == 0 {
		t.Errorf("structural-label query with Following found nothing")
	}
	// Structural labels survive the APQ translation.
	apq, err := ToAPQ(leafQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(apq.EvalAll(tr)) != len(EvaluateNodes(tr, leafQ)) {
		t.Errorf("APQ route disagrees on structural labels")
	}
}

func TestIntegrationDichotomyGuidesStrategy(t *testing.T) {
	// Every random paper-axes query gets a plan consistent with its
	// classification: tractable signatures never fall to backtracking
	// unless the query is cyclic AND intractable.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		q := randomPaperQuery(rng, 3, 2+rng.Intn(3))
		plan := PlanFor(q)
		switch plan.Strategy {
		case core.StrategyAcyclic:
			if cq.Classify(q) != cq.Acyclic {
				t.Fatalf("acyclic strategy for non-acyclic query %s", q)
			}
		case core.StrategyXProperty:
			if plan.Classification.Complexity != core.PTime {
				t.Fatalf("x-property strategy for intractable signature %s", q)
			}
		case core.StrategyBacktrack:
			if cq.Classify(q) == cq.Acyclic || plan.Classification.Complexity == core.PTime {
				t.Fatalf("backtracking chosen needlessly for %s", q)
			}
		}
	}
}
