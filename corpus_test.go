package cqtrees

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/tree"
)

// buildCorpus indexes n random trees as docs named d00..d(n-1).
func buildCorpus(t testing.TB, n, nodes int, seed int64) (*Corpus, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := NewCorpus()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("d%02d", i)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: nodes, MaxChildren: 3, Alphabet: []string{"A", "B", "C"},
		})
		if _, err := c.AddTree(names[i], tr); err != nil {
			t.Fatalf("AddTree %s: %v", names[i], err)
		}
	}
	return c, names
}

// TestCorpusBatchParity: for every strategy and worker count, batch
// evaluation yields exactly the per-document sequential results — same
// documents, same answers, no errors.
func TestCorpusBatchParity(t *testing.T) {
	c, names := buildCorpus(t, 9, 120, 7)
	var pqs []*PreparedQuery
	var srcs []string
	for _, name := range []string{"acyclic", "xproperty", "backtrack"} {
		pqs = append(pqs, MustCompile(strategyQueries[name]))
		srcs = append(srcs, name)
	}

	// Ground truth: direct per-document evaluation.
	type key struct {
		doc   string
		query int
	}
	wantTuples := map[key][][]NodeID{}
	for _, name := range names {
		doc, ok := c.Get(name)
		if !ok {
			t.Fatalf("Get %s failed", name)
		}
		for qi, pq := range pqs {
			tuples, err := pq.AllErr(doc)
			if err != nil {
				t.Fatalf("%s/%s: AllErr: %v", name, srcs[qi], err)
			}
			wantTuples[key{name, qi}] = tuples
		}
	}

	for _, workers := range []int{1, 4} {
		got := map[key][][]NodeID{}
		for r := range c.TuplesSet(pqs, WithBatchWorkers(workers)) {
			if r.Err != nil {
				t.Fatalf("workers=%d %s/%s: %v", workers, r.Doc, srcs[r.Query], r.Err)
			}
			if _, dup := got[key{r.Doc, r.Query}]; dup {
				t.Fatalf("workers=%d: duplicate result for %s/%d", workers, r.Doc, r.Query)
			}
			got[key{r.Doc, r.Query}] = r.Tuples
		}
		if len(got) != len(wantTuples) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(wantTuples))
		}
		for k, want := range wantTuples {
			if !reflect.DeepEqual(got[k], want) {
				t.Fatalf("workers=%d %s/%s: %v != %v", workers, k.doc, srcs[k.query], got[k], want)
			}
		}

		// Nodes and Bool agree with the tuple relation.
		for r := range c.NodesSet(pqs, WithBatchWorkers(workers)) {
			if r.Err != nil {
				t.Fatalf("Nodes workers=%d %s/%s: %v", workers, r.Doc, srcs[r.Query], r.Err)
			}
			want := wantTuples[key{r.Doc, r.Query}]
			if len(r.Nodes) != len(want) {
				t.Fatalf("Nodes workers=%d %s/%s: %d nodes, want %d", workers, r.Doc, srcs[r.Query], len(r.Nodes), len(want))
			}
			for i, v := range r.Nodes {
				if v != want[i][0] {
					t.Fatalf("Nodes workers=%d %s/%s: node %d = %v, want %v", workers, r.Doc, srcs[r.Query], i, v, want[i][0])
				}
			}
		}
		for r := range c.BoolSet(pqs, WithBatchWorkers(workers)) {
			if r.Err != nil {
				t.Fatalf("Bool workers=%d %s/%s: %v", workers, r.Doc, srcs[r.Query], r.Err)
			}
			if want := len(wantTuples[key{r.Doc, r.Query}]) > 0; r.Sat != want {
				t.Fatalf("Bool workers=%d %s/%s: %v, want %v", workers, r.Doc, srcs[r.Query], r.Sat, want)
			}
		}
	}
}

// TestCorpusDocSelection: WithDocs picks exactly the named documents
// (missing ones reported per query with ErrUnknownDocument), WithDocFilter
// restricts the fleet.
func TestCorpusDocSelection(t *testing.T) {
	c, names := buildCorpus(t, 6, 60, 21)
	pq := MustCompile(strategyQueries["acyclic"])

	var seen, failed []string
	for r := range c.Bool(pq, WithDocs(names[1], "ghost", names[3])) {
		if r.Err != nil {
			if !errors.Is(r.Err, ErrUnknownDocument) {
				t.Fatalf("%s: err = %v, want ErrUnknownDocument", r.Doc, r.Err)
			}
			failed = append(failed, r.Doc)
			continue
		}
		seen = append(seen, r.Doc)
	}
	sort.Strings(seen)
	if !reflect.DeepEqual(seen, []string{names[1], names[3]}) {
		t.Fatalf("evaluated %v, want [%s %s]", seen, names[1], names[3])
	}
	if !reflect.DeepEqual(failed, []string{"ghost"}) {
		t.Fatalf("failed %v, want [ghost]", failed)
	}

	seen = nil
	for r := range c.Bool(pq, WithDocFilter(func(name string) bool { return name <= names[2] })) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Doc, r.Err)
		}
		seen = append(seen, r.Doc)
	}
	sort.Strings(seen)
	if !reflect.DeepEqual(seen, names[:3]) {
		t.Fatalf("filtered fleet %v, want %v", seen, names[:3])
	}

	// A dynamically built empty selection evaluates nothing — it must not
	// fall back to the whole fleet.
	var none []string
	for r := range c.Bool(pq, WithDocs(none...)) {
		t.Fatalf("empty WithDocs yielded %s", r.Doc)
	}
}

// TestCorpusNodesNotMonadic: a non-unary query reports ErrNotMonadic in
// every per-document result instead of panicking.
func TestCorpusNodesNotMonadic(t *testing.T) {
	c, _ := buildCorpus(t, 3, 30, 5)
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	n := 0
	for r := range c.Nodes(pq) {
		n++
		if !errors.Is(r.Err, ErrNotMonadic) {
			t.Fatalf("%s: err = %v, want ErrNotMonadic", r.Doc, r.Err)
		}
	}
	if n != 3 {
		t.Fatalf("%d results, want 3", n)
	}
}

// TestCorpusBatchCancellation: a cancelled batch context stops the fan-out
// — pre-cancelled batches yield nothing, mid-flight cancels surface as
// per-document context errors — and the worker pool always joins (no
// goroutine leak).
func TestCorpusBatchCancellation(t *testing.T) {
	c, _ := buildCorpus(t, 8, 400, 99)
	pq := MustCompile(strategyQueries["xproperty"])

	before := runtime.NumGoroutine()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for range c.Tuples(pq, WithBatchContext(cancelled), WithBatchWorkers(4)) {
		t.Fatal("pre-cancelled batch yielded a result")
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	clean, errored := 0, 0
	for r := range c.Tuples(pq, WithBatchContext(ctx), WithBatchWorkers(2)) {
		switch {
		case r.Err == nil:
			clean++
		case errors.Is(r.Err, context.Canceled):
			errored++
		default:
			t.Fatalf("%s: unexpected err %v", r.Doc, r.Err)
		}
		cancelMid()
	}
	if clean+errored == 0 || clean+errored == c.Len() && errored == 0 {
		t.Fatalf("mid-flight cancel: %d clean + %d cancelled of %d", clean, errored, c.Len())
	}

	// Early break joins the pool too.
	for range c.Bool(pq, WithBatchWorkers(4)) {
		break
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutine leak: %d before, %d after", before, got)
	}
}

// TestCorpusConcurrentMutation: batches keep streaming correct snapshots
// while other goroutines add, swap, and remove documents (run under -race
// in CI).
func TestCorpusConcurrentMutation(t *testing.T) {
	c, names := buildCorpus(t, 6, 80, 33)
	pq := MustCompile(strategyQueries["acyclic"])

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("extra%02d", i%4)
			tr := tree.Random(rng, tree.RandomConfig{Nodes: 40, MaxChildren: 3, Alphabet: []string{"A", "B"}})
			if _, err := c.Swap(name, Index(tr)); err != nil {
				t.Error(err)
				return
			}
			c.Remove(fmt.Sprintf("extra%02d", (i+2)%4))
			i++
		}
	}()

	for round := 0; round < 20; round++ {
		seen := map[string]bool{}
		for r := range c.Bool(pq, WithBatchWorkers(3)) {
			if r.Err != nil {
				t.Fatalf("round %d %s: %v", round, r.Doc, r.Err)
			}
			if seen[r.Doc] {
				t.Fatalf("round %d: duplicate %s", round, r.Doc)
			}
			seen[r.Doc] = true
		}
		// The stable fleet is always present in the snapshot.
		for _, name := range names {
			if !seen[name] {
				t.Fatalf("round %d: stable doc %s missing", round, name)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestCorpusEviction drives the public budget/eviction surface: the hook
// observes LRU evictions, Get counts as a touch, and accounting shrinks.
func TestCorpusEviction(t *testing.T) {
	sizer := Index(MustParseTree("A(B,C(B))"))
	sizer.Materialize() // Add charges the materialized size; budget from the same figure
	unit := sizer.SizeBytes()
	var evicted []string
	c := NewCorpus(
		WithMaxBytes(2*unit+unit/2),
		WithEvictionHook(func(name string, doc *Document) {
			if doc == nil {
				t.Errorf("hook(%s): nil doc", name)
			}
			evicted = append(evicted, name)
		}),
	)
	for _, name := range []string{"a", "b"} {
		if err := c.Add(name, Index(MustParseTree("A(B,C(B))"))); err != nil {
			t.Fatalf("Add %s: %v", name, err)
		}
	}
	if _, ok := c.Get("a"); !ok { // touch: "b" becomes LRU
		t.Fatal("Get a")
	}
	if err := c.Add("c", Index(MustParseTree("A(B,C(B))"))); err != nil {
		t.Fatalf("Add c: %v", err)
	}
	if !reflect.DeepEqual(evicted, []string{"b"}) {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("Names = %v", got)
	}
	if c.Bytes() > 2*unit+unit/2 {
		t.Fatalf("Bytes = %d over budget", c.Bytes())
	}
}

// TestCorpusSizeBytes: the accounting figure is positive, grows with the
// tree, and Document.SizeBytes is stable across calls.
func TestCorpusSizeBytes(t *testing.T) {
	small := Index(MustParseTree("A(B)"))
	rng := rand.New(rand.NewSource(3))
	big := Index(tree.Random(rng, tree.DefaultRandomConfig(5000)))
	if small.SizeBytes() <= 0 {
		t.Fatalf("small SizeBytes = %d", small.SizeBytes())
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("big (%d) <= small (%d)", big.SizeBytes(), small.SizeBytes())
	}
	if a, b := big.SizeBytes(), big.SizeBytes(); a != b {
		t.Fatalf("SizeBytes unstable: %d != %d", a, b)
	}
	// ~56 bytes of precomputed orders + headers per node is the floor.
	if got, floor := big.SizeBytes(), int64(5000*56); got < floor {
		t.Fatalf("big SizeBytes = %d, below per-node floor %d", got, floor)
	}
}

// TestBatchMaxTuples: WithBatchMaxTuples caps each document's answer
// relation at n sorted tuples. A capped row is marked Truncated and holds
// exactly n tuples that are a genuine subset of the full relation; a
// document with at most n answers is complete and unmarked — including
// the exactly-n case. A cap at least as large as every relation is a
// no-op that reproduces the uncapped results bit for bit.
func TestBatchMaxTuples(t *testing.T) {
	c, _ := buildCorpus(t, 6, 100, 13)
	pq := MustCompile(strategyQueries["backtrack"])

	full := map[string][][]NodeID{}
	maxLen := 0
	for r := range c.Tuples(pq) {
		if r.Err != nil {
			t.Fatalf("uncapped %s: %v", r.Doc, r.Err)
		}
		if r.Truncated {
			t.Fatalf("uncapped %s marked truncated", r.Doc)
		}
		full[r.Doc] = r.Tuples
		maxLen = max(maxLen, len(r.Tuples))
	}
	if maxLen < 2 {
		t.Fatalf("corpus too small to exercise the cap: max relation %d", maxLen)
	}

	asSet := func(tuples [][]NodeID) map[string]bool {
		set := make(map[string]bool, len(tuples))
		for _, tup := range tuples {
			set[fmt.Sprint(tup)] = true
		}
		return set
	}
	for _, workers := range []int{1, 4} {
		for _, cap := range []int{1, 2, maxLen, maxLen + 7} {
			for r := range c.Tuples(pq, WithBatchWorkers(workers), WithBatchMaxTuples(cap)) {
				if r.Err != nil {
					t.Fatalf("cap=%d %s: %v", cap, r.Doc, r.Err)
				}
				want := full[r.Doc]
				if len(want) <= cap {
					// Fits under the cap (exactly-n included): complete.
					if r.Truncated || !reflect.DeepEqual(r.Tuples, want) {
						t.Fatalf("cap=%d %s: truncated=%v, %v != %v", cap, r.Doc, r.Truncated, r.Tuples, want)
					}
					continue
				}
				if !r.Truncated || len(r.Tuples) != cap {
					t.Fatalf("cap=%d %s: truncated=%v with %d of %d tuples", cap, r.Doc, r.Truncated, len(r.Tuples), len(want))
				}
				// Capped tuples are sorted and drawn from the full relation.
				if !sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
					return tupleLess(r.Tuples[i], r.Tuples[j])
				}) {
					t.Fatalf("cap=%d %s: capped tuples unsorted: %v", cap, r.Doc, r.Tuples)
				}
				fullSet := asSet(want)
				for _, tup := range r.Tuples {
					if !fullSet[fmt.Sprint(tup)] {
						t.Fatalf("cap=%d %s: tuple %v not in the full relation", cap, r.Doc, tup)
					}
				}
			}
		}
	}
}
