// Command rewrite walks through the Fig. 8 example: translating the
// introduction's (cyclic after Following-elimination) conjunctive query
// into an acyclic positive query, showing every pipeline stage of
// Theorem 6.10 and verifying equivalence on sample trees.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/succinct"
	"repro/internal/tree"
)

func main() {
	q := rewrite.IntroQuery()
	fmt.Println("input (the introduction's query, //A[B]/following::C):")
	fmt.Println("  ", q)
	fmt.Println("  class:", cq.Classify(q))

	// Stage 1 (Eq. (1)): eliminate Following.
	s1 := rewrite.RewriteFollowingEq1(q)
	fmt.Println("\nstage 1 — Following eliminated via Child*/NextSibling+:")
	fmt.Println("  ", s1)
	fmt.Println("  class:", cq.Classify(s1))

	// Stage 2: expand Child* into Child+ / equality branches.
	branches := rewrite.ExpandChildStar(s1)
	fmt.Printf("\nstage 2 — %d Child*-expansion branches:\n", len(branches))
	for _, b := range branches {
		fmt.Println("  ", b)
	}

	// Stage 3: join-lifter rewriting (Lemma 6.5 with the Thm 6.6 table).
	apq, err := rewrite.TranslateCQ(q, rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstage 3 — final APQ: %d acyclic disjuncts, %d atoms total:\n",
		len(apq.Disjuncts), apq.Size())
	fmt.Println(apq)

	// Verification: equivalence on random trees.
	engine := core.NewBacktrackEngine()
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for i := 0; i < 200; i++ {
		t := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(14), MaxChildren: 3,
			Alphabet: []string{"A", "B", "C"},
		})
		want := engine.EvalAll(t, q)
		got := apq.EvalAll(t)
		if len(want) != len(got) {
			log.Fatalf("MISMATCH on %s: %v vs %v", t, want, got)
		}
		checked++
	}
	fmt.Printf("\nverified equivalent on %d random trees ✓\n", checked)

	// The diamond blowup (Theorem 7.1), measured.
	fmt.Println("\nDn diamond blowup (Thm 7.1 — exponential APQ sizes):")
	fmt.Println("  n   |Dn|  APQ disjuncts  APQ atoms")
	for n := 1; n <= 4; n++ {
		d := succinct.Diamond(n)
		a, err := rewrite.RewriteToAPQ(d, rewrite.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d   %3d   %12d  %9d\n", n, d.Size(), len(a.Disjuncts), a.Size())
	}
}
