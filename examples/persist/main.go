// Command persist demonstrates the snapshot tier: write a corpus of
// indexed documents to disk as binary snapshots, simulate a process
// restart, recover the whole corpus from the directory without
// re-parsing anything, and watch lazy hydration do its work — stubs
// register from 48-byte headers, documents materialize on first use, and
// the index build counter proves no index was ever rebuilt.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	cqtrees "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "cqtrees-persist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- First process lifetime: parse, index, persist. ----
	branches := map[string]string{
		"north": "Lib(Shelf(Book(Title,Author),Book(Title)),Shelf(Book(Title,Author)))",
		"south": "Lib(Shelf(Book(Title)),Shelf(Book(Title),Book(Title)))",
		"east":  "Lib(Shelf(Book(Title,Author,Author)))",
		"west":  "Lib(Shelf(Shelf(Book(Title,Author))))",
	}
	c := cqtrees.NewCorpus()
	for name, term := range branches {
		if _, err := c.AddTree(name, cqtrees.MustParseTree(term)); err != nil {
			log.Fatal(err)
		}
	}
	n, err := c.PersistDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d documents to %s:\n", n, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %4d bytes\n", e.Name(), info.Size())
	}

	// Remember one answer set so the restarted corpus can be checked
	// against it.
	authored := cqtrees.MustCompile("Q(b) <- Book(b), Child(b, a), Author(a)")
	wantNorth, err := authored.NodesErr(mustGet(c, "north"))
	if err != nil {
		log.Fatal(err)
	}

	// ---- "Restart": a fresh corpus recovered from the directory. ----
	// LoadDir reads only each snapshot's header, so this is near-free no
	// matter how large the documents are; nothing is parsed, nothing is
	// indexed, and no document bytes are resident yet.
	buildsBefore := cqtrees.IndexBuildCount()
	c2 := cqtrees.NewCorpus()
	if _, err := c2.LoadDir(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter restart + LoadDir: %d documents registered, %d bytes resident\n",
		c2.Len(), c2.Bytes())
	names := c2.Names()
	sort.Strings(names)
	for _, name := range names {
		st, _ := c2.Stat(name)
		fmt.Printf("  %-5s nodes=%-3d hydrated=%v\n", name, st.Nodes, st.Hydrated)
	}

	// First use hydrates: one aligned read plus zero-copy pointer fixups.
	got, err := authored.NodesErr(mustGet(c2, "north"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery on recovered corpus: %d authored books in north (fresh run had %d)\n",
		len(got), len(wantNorth))
	st, _ := c2.Stat("north")
	fmt.Printf("north after first use: hydrated=%v, %d bytes resident corpus-wide\n",
		st.Hydrated, c2.Bytes())

	// Batches hydrate whatever they touch; the rest of the fleet follows.
	sat := 0
	for r := range c2.Bool(authored) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		if r.Sat {
			sat++
		}
	}
	fmt.Printf("fleet screening: %d/%d branches have an authored book\n", sat, c2.Len())

	// The whole recovery ran without a single index build: snapshots load,
	// they do not rebuild.
	fmt.Printf("\nindex builds during recovery and querying: %d (loads: %d)\n",
		cqtrees.IndexBuildCount()-buildsBefore, cqtrees.IndexLoadCount())
}

func mustGet(c *cqtrees.Corpus, name string) *cqtrees.Document {
	doc, ok := c.Get(name)
	if !ok {
		log.Fatalf("document %q missing", name)
	}
	return doc
}
