// Command persist demonstrates the snapshot tier: write a corpus of
// indexed documents to disk as binary snapshots, simulate a process
// restart, recover the whole corpus from the directory without
// re-parsing anything, and watch lazy hydration do its work — stubs
// register from 48-byte headers, documents materialize on first use, and
// the index build counter proves no index was ever rebuilt.
//
// The last act damages a snapshot at rest and restarts again: the
// corrupt file is quarantined (renamed to <file>.corrupt, typed error,
// counted) while every healthy document keeps serving, and re-adding +
// re-persisting the document heals it.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	cqtrees "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "cqtrees-persist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- First process lifetime: parse, index, persist. ----
	branches := map[string]string{
		"north": "Lib(Shelf(Book(Title,Author),Book(Title)),Shelf(Book(Title,Author)))",
		"south": "Lib(Shelf(Book(Title)),Shelf(Book(Title),Book(Title)))",
		"east":  "Lib(Shelf(Book(Title,Author,Author)))",
		"west":  "Lib(Shelf(Shelf(Book(Title,Author))))",
	}
	c := cqtrees.NewCorpus()
	for name, term := range branches {
		if _, err := c.AddTree(name, cqtrees.MustParseTree(term)); err != nil {
			log.Fatal(err)
		}
	}
	n, err := c.PersistDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d documents to %s:\n", n, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %4d bytes\n", e.Name(), info.Size())
	}

	// Remember one answer set so the restarted corpus can be checked
	// against it.
	authored := cqtrees.MustCompile("Q(b) <- Book(b), Child(b, a), Author(a)")
	wantNorth, err := authored.NodesErr(mustGet(c, "north"))
	if err != nil {
		log.Fatal(err)
	}

	// ---- "Restart": a fresh corpus recovered from the directory. ----
	// LoadDir reads only each snapshot's header, so this is near-free no
	// matter how large the documents are; nothing is parsed, nothing is
	// indexed, and no document bytes are resident yet.
	buildsBefore := cqtrees.IndexBuildCount()
	c2 := cqtrees.NewCorpus()
	if _, err := c2.LoadDir(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter restart + LoadDir: %d documents registered, %d bytes resident\n",
		c2.Len(), c2.Bytes())
	names := c2.Names()
	sort.Strings(names)
	for _, name := range names {
		st, _ := c2.Stat(name)
		fmt.Printf("  %-5s nodes=%-3d hydrated=%v\n", name, st.Nodes, st.Hydrated)
	}

	// First use hydrates: one aligned read plus zero-copy pointer fixups.
	got, err := authored.NodesErr(mustGet(c2, "north"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery on recovered corpus: %d authored books in north (fresh run had %d)\n",
		len(got), len(wantNorth))
	st, _ := c2.Stat("north")
	fmt.Printf("north after first use: hydrated=%v, %d bytes resident corpus-wide\n",
		st.Hydrated, c2.Bytes())

	// Batches hydrate whatever they touch; the rest of the fleet follows.
	sat := 0
	for r := range c2.Bool(authored) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		if r.Sat {
			sat++
		}
	}
	fmt.Printf("fleet screening: %d/%d branches have an authored book\n", sat, c2.Len())

	// The whole recovery ran without a single index build: snapshots load,
	// they do not rebuild.
	fmt.Printf("\nindex builds during recovery and querying: %d (loads: %d)\n",
		cqtrees.IndexBuildCount()-buildsBefore, cqtrees.IndexLoadCount())

	// ---- Fault tolerance: a snapshot corrupted at rest. ----
	// Flip one byte in the middle of "east"'s snapshot — past the header,
	// so only the full-read checksum can catch it — and restart once more.
	eastPath := filepath.Join(dir, "east.cqs")
	blob, err := os.ReadFile(eastPath)
	if err != nil {
		log.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(eastPath, blob, 0o644); err != nil {
		log.Fatal(err)
	}

	c3 := cqtrees.NewCorpus()
	if _, err := c3.LoadDir(dir); err != nil {
		log.Fatal(err) // headers are fine; the rot is in the body
	}
	_, err = c3.GetErr("east")
	fmt.Printf("\nafter corrupting east.cqs, first use reports:\n  %v\n", err)
	fmt.Printf("  quarantined (do not retry): %v\n",
		errors.Is(err, cqtrees.ErrDocumentQuarantined))
	if _, statErr := os.Stat(eastPath + ".corrupt"); statErr == nil {
		fmt.Println("  corrupt bytes kept for forensics at east.cqs.corrupt")
	}
	healthy := 0
	for _, name := range c3.Names() {
		if _, err := c3.GetErr(name); err == nil {
			healthy++
		}
	}
	ps := c3.Persistence()
	fmt.Printf("  healthy documents unaffected: %d/%d serve (quarantines: %d)\n",
		healthy, c3.Len(), ps.Quarantines)

	// Healing: swap a fresh document in over the quarantined stub and
	// persist it — the entry serves again and the next restart is clean.
	if _, err := c3.Swap("east", cqtrees.Index(cqtrees.MustParseTree(branches["east"]))); err != nil {
		log.Fatal(err)
	}
	if err := c3.PersistDoc(dir, "east"); err != nil {
		log.Fatal(err)
	}
	if _, err := c3.GetErr("east"); err == nil {
		fmt.Println("  healed: east re-added, re-persisted, serving again")
	}
}

func mustGet(c *cqtrees.Corpus, name string) *cqtrees.Document {
	doc, ok := c.Get(name)
	if !ok {
		log.Fatalf("document %q missing", name)
	}
	return doc
}
