// Command treebank runs the paper's computational-linguistics workload
// (Fig. 1): on a synthetic phrase-structure corpus, find prepositional
// phrases following noun phrases within the same sentence,
//
//	Q(z) ← S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z)
//
// comparing the general engine with evaluation of the acyclic translation.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	cqtrees "repro"
	"repro/internal/rewrite"
	"repro/internal/treebank"
)

func main() {
	sentences := flag.Int("sentences", 128, "number of corpus sentences")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	corpus := treebank.Generate(treebank.Config{
		Sentences: *sentences, MaxDepth: 6, Seed: *seed,
	})
	st := corpus.Summarize()
	fmt.Printf("corpus: %d sentences, %d nodes, max depth %d, %d NPs, %d PPs\n",
		st.Sentences, st.Nodes, st.MaxDepth, st.NPCount, st.PPCount)

	q := rewrite.Figure1Query()
	fmt.Println("query:", q)

	// Prepare once: classification and planning are query-only work; the
	// prepared query then evaluates against any number of trees.
	t0 := time.Now()
	pq := cqtrees.MustPrepare(q)
	prepTime := time.Since(t0)
	fmt.Printf("plan:  %v (prepared in %v)\n", pq.Plan(), prepTime)

	t0 = time.Now()
	answers := pq.Nodes(corpus.Combined)
	direct := time.Since(t0)
	fmt.Printf("\ndirect evaluation: %d matching PPs in %v\n", len(answers), direct)

	// Theorem 6.10 route: translate once, evaluate the acyclic union.
	t1 := time.Now()
	apq, err := rewrite.TranslateCQ(q, rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	translation := time.Since(t1)
	t2 := time.Now()
	viaAPQ := apq.EvalAll(corpus.Combined)
	apqTime := time.Since(t2)
	fmt.Printf("APQ route: %d disjuncts (translated in %v), evaluation %v, %d answers\n",
		len(apq.Disjuncts), translation, apqTime, len(viaAPQ))

	if len(viaAPQ) != len(answers) {
		log.Fatalf("BUG: APQ answers (%d) differ from direct (%d)", len(viaAPQ), len(answers))
	}
	fmt.Println("\nboth strategies agree — sample matches:")
	tr := corpus.Combined
	for i, z := range answers {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(answers)-5)
			break
		}
		fmt.Printf("  PP node %d (depth %d, subtree of %d nodes)\n",
			z, tr.Depth(z), tr.SubtreeSize(z))
	}
}
