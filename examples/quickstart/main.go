// Command quickstart demonstrates the public API end to end: index a
// tree into a Document, run tractable and intractable conjunctive
// queries against it through the iterator and error-returning tiers,
// inspect the dichotomy classification, and translate a cyclic query to
// an acyclic positive query and to XPath.
package main

import (
	"fmt"
	"log"

	cqtrees "repro"
)

func main() {
	// An XML-ish document as a labeled tree, indexed once: the Document
	// carries every tree-derived structure and is shared by all queries
	// below (and could be shared by any number of goroutines).
	t := cqtrees.MustParseTree("Lib(Shelf(Book(Title,Author),Book(Title)),Shelf(Book(Title,Author,Author)))")
	doc := cqtrees.Index(t)
	fmt.Println("tree:", t)
	fmt.Println("nodes:", doc.Len())

	// A monadic acyclic query: books with at least one author. NodeSeq is
	// a range-over-func iterator — break stops the engine immediately.
	pq1 := cqtrees.MustCompile("Q(b) <- Book(b), Child(b, a), Author(a)")
	fmt.Println("\nquery 1:", pq1.Query())
	fmt.Println("plan:   ", pq1.Plan())
	for v := range pq1.NodeSeq(doc) {
		fmt.Printf("  node %d at depth %d\n", v, t.Depth(v))
	}

	// A cyclic query over an NP-hard signature: a Title and an Author
	// under the same book, with the title before the author. Tuples
	// streams owned answer tuples; AllErr would materialize them sorted.
	pq2 := cqtrees.MustCompile(
		"Q(b) <- Book(b), Child+(b, t), Title(t), Child+(b, a), Author(a), Following(t, a)")
	fmt.Println("\nquery 2:", pq2.Query())
	fmt.Println("plan:   ", pq2.Plan())
	fmt.Print("answers:")
	for tuple := range pq2.Tuples(doc) {
		fmt.Print(" ", tuple)
	}
	fmt.Println()

	q2 := pq2.Query()

	// The dichotomy (Theorem 1.1 / Table I).
	fmt.Println("\nTable I — the tractability frontier:")
	fmt.Print(cqtrees.TableI())

	// Expressiveness (Theorem 6.10): q2 as an acyclic positive query.
	apq, err := cqtrees.ToAPQ(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nq2 as an APQ (%d disjuncts, %d atoms total):\n", len(apq.Disjuncts), apq.Size())
	fmt.Println(apq)

	// ... and as XPath (Remark 6.1).
	exprs, err := cqtrees.ToXPath(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nq2 as XPath:")
	for _, e := range exprs {
		fmt.Println("  ", e)
	}
}
