// Command quickstart demonstrates the public API end to end: build a
// tree, run tractable and intractable conjunctive queries, inspect the
// dichotomy classification, and translate a cyclic query to an acyclic
// positive query and to XPath.
package main

import (
	"fmt"
	"log"

	cqtrees "repro"
)

func main() {
	// An XML-ish document as a labeled tree.
	t := cqtrees.MustParseTree("Lib(Shelf(Book(Title,Author),Book(Title)),Shelf(Book(Title,Author,Author)))")
	fmt.Println("tree:", t)
	fmt.Println("nodes:", t.Len())

	// A monadic acyclic query: books with at least one author.
	q1 := cqtrees.MustParseQuery("Q(b) <- Book(b), Child(b, a), Author(a)")
	fmt.Println("\nquery 1:", q1)
	fmt.Println("plan:   ", cqtrees.PlanFor(q1))
	for _, v := range cqtrees.EvaluateNodes(t, q1) {
		fmt.Printf("  node %d at depth %d\n", v, t.Depth(v))
	}

	// A cyclic query over an NP-hard signature: a Title and an Author
	// under the same book, with the title before the author.
	q2 := cqtrees.MustParseQuery(
		"Q(b) <- Book(b), Child+(b, t), Title(t), Child+(b, a), Author(a), Following(t, a)")
	fmt.Println("\nquery 2:", q2)
	fmt.Println("plan:   ", cqtrees.PlanFor(q2))
	fmt.Println("answers:", cqtrees.EvaluateAll(t, q2))

	// The dichotomy (Theorem 1.1 / Table I).
	fmt.Println("\nTable I — the tractability frontier:")
	fmt.Print(cqtrees.TableI())

	// Expressiveness (Theorem 6.10): q2 as an acyclic positive query.
	apq, err := cqtrees.ToAPQ(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nq2 as an APQ (%d disjuncts, %d atoms total):\n", len(apq.Disjuncts), apq.Size())
	fmt.Println(apq)

	// ... and as XPath (Remark 6.1).
	exprs, err := cqtrees.ToXPath(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nq2 as XPath:")
	for _, e := range exprs {
		fmt.Println("  ", e)
	}
}
