// Command corpus demonstrates the fleet tier of the engine: a Corpus of
// named, immutable indexed documents, batch evaluation fanning prepared
// queries across the fleet with a bounded worker pool, document-subset
// selection, a memory budget with LRU eviction, and the ownership rules
// that make it all safe (documents are immutable; removal only drops the
// corpus's reference, so in-flight batches keep their snapshot).
package main

import (
	"fmt"
	"log"
	"sort"

	cqtrees "repro"
)

func main() {
	// A fleet of small "library branch" documents. In a server these
	// would arrive over the wire (see cmd/cqserve); each is indexed once
	// and shared by every query ever run against it.
	branches := map[string]string{
		"north": "Lib(Shelf(Book(Title,Author),Book(Title)),Shelf(Book(Title,Author)))",
		"south": "Lib(Shelf(Book(Title)),Shelf(Book(Title),Book(Title)))",
		"east":  "Lib(Shelf(Book(Title,Author,Author)))",
		"west":  "Lib(Shelf(Shelf(Book(Title,Author))))",
	}

	c := cqtrees.NewCorpus()
	for name, term := range branches {
		if _, err := c.AddTree(name, cqtrees.MustParseTree(term)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("corpus: %d documents, ~%d bytes indexed\n", c.Len(), c.Bytes())

	// One prepared query, compiled once, fanned across the whole fleet.
	// Results stream in completion order; collect and sort for display.
	authored := cqtrees.MustCompile("Q(b) <- Book(b), Child(b, a), Author(a)")
	type row struct {
		doc   string
		count int
	}
	var rows []row
	for r := range c.Nodes(authored, cqtrees.WithBatchWorkers(4)) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		rows = append(rows, row{r.Doc, len(r.Nodes)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].doc < rows[j].doc })
	fmt.Println("\nbooks with an author, per branch:")
	for _, r := range rows {
		fmt.Printf("  %-5s %d\n", r.doc, r.count)
	}

	// Boolean screening over a subset of the fleet: which of the named
	// branches have any author at all? Unknown names come back as
	// per-document errors, not panics.
	anyAuthor := cqtrees.MustCompile("Q() <- Author(a)")
	fmt.Println("\nauthor screening (north, south, archive):")
	for r := range c.Bool(anyAuthor, cqtrees.WithDocs("north", "south", "archive")) {
		if r.Err != nil {
			fmt.Printf("  %-7s error: %v\n", r.Doc, r.Err)
			continue
		}
		fmt.Printf("  %-7s %v\n", r.Doc, r.Sat)
	}

	// A memory budget: the corpus charges each document its approximate
	// indexed footprint and LRU-evicts past the budget, reporting each
	// eviction to the hook. Touching "north" makes "south" the least
	// recently used, so "south" is the one evicted below.
	budget := c.Bytes() - 1 // one byte short: the LRU document must go
	evicted := []string{}
	small := cqtrees.NewCorpus(
		cqtrees.WithMaxBytes(budget),
		cqtrees.WithEvictionHook(func(name string, _ *cqtrees.Document) {
			evicted = append(evicted, name)
		}),
	)
	for _, name := range []string{"north", "south", "east"} {
		if _, err := small.AddTree(name, cqtrees.MustParseTree(branches[name])); err != nil {
			log.Fatal(err)
		}
	}
	small.Get("north") // a use: "south" is now least recently used
	if _, err := small.AddTree("west", cqtrees.MustParseTree(branches["west"])); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudgeted corpus (%d bytes): kept %v, evicted %v\n",
		budget, small.Names(), evicted)
}
