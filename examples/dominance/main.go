// Command dominance demonstrates the dominance-constraint application of
// §1: scope underspecification in computational linguistics. A classic
// "scope diamond" is stated as dominance constraints, compiled to a
// Boolean conjunctive query, solved into acyclic solved forms (the §6
// translation), and checked against candidate parse trees.
package main

import (
	"fmt"
	"log"

	cqtrees "repro"
	"repro/internal/dominance"
)

func main() {
	// "Every student reads some book": two quantifiers Q1, Q2 whose
	// scopes both dominate the same predicate P, below a sentence root.
	p := (&dominance.Problem{}).Add(
		dominance.Lab("root", "S"),
		dominance.Dom("root", "q1"), dominance.Lab("q1", "Q1"),
		dominance.Dom("root", "q2"), dominance.Lab("q2", "Q2"),
		dominance.Dom("q1", "p"), dominance.Dom("q2", "p"), dominance.Lab("p", "P"),
	)
	fmt.Println("dominance constraints:")
	for _, c := range p.Constraints {
		fmt.Println("  ", c)
	}
	q := p.ToCQ()
	fmt.Println("\nas a conjunctive query:", q)
	fmt.Println("plan:", cqtrees.PlanFor(q))

	sat, err := p.Satisfiable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("satisfiable:", sat)

	forms, err := p.SolvedForms()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolved forms (acyclic disjuncts): %d\n", len(forms.Disjuncts))

	readings := map[string]string{
		"surface scope (Q1 over Q2)": "S(Q1(Q2(P)))",
		"inverse scope (Q2 over Q1)": "S(Q2(Q1(P)))",
		"broken (disjoint scopes)":   "S(Q1(P),Q2(X))",
	}
	fmt.Println("\ncandidate readings:")
	for name, src := range readings {
		t := cqtrees.MustParseTree(src)
		fmt.Printf("  %-28s realized: %v\n", name, p.SatisfiedBy(t))
	}

	// An over-constrained variant is detected as unsatisfiable.
	bad := (&dominance.Problem{}).Add(
		dominance.Prec("a", "b"),
		dominance.Dom("b", "a"),
	)
	sat, err = bad.Satisfiable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover-constrained set {a ≺ b, b ◁* a} satisfiable: %v\n", sat)
}
