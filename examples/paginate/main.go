// Command paginate walks a very large answer relation page by page over
// HTTP, using the serving tier's resumable cursors: an in-process cqserve
// holds one deep B-chain document whose chain query has ~depth²/2 answers
// (about a million at the default depth), and the client fetches it in
// fixed-size pages, each request resuming exactly where the previous
// page ended via the opaque next_cursor token. The walk's total cost is
// linear in the answers delivered — every resume re-descends in
// O(depth + page) — and the program verifies that the reassembled union
// has exactly the closed-form answer count, plus that the cursor dies
// with 410 Gone the moment the document's content changes.
//
// Run it small (the examples smoke in CI does) or at the full million:
//
//	go run ./examples/paginate -depth 200 -page 1000
//	go run ./examples/paginate                      # depth 1414, ~1M answers
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/serve"
)

func main() {
	depth := flag.Int("depth", 1414, "B-chain depth; answers = depth*(depth-1)/2")
	page := flag.Int("page", 10000, "page size per request")
	flag.Parse()

	// An in-process server over loopback: the same handler cqserve runs.
	srv, err := serve.New(serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed one deep document: A over a chain of depth B nodes.
	var b strings.Builder
	for i := 0; i < *depth-1; i++ {
		b.WriteString("B(")
	}
	b.WriteString("B")
	term := "A(" + b.String() + strings.Repeat(")", *depth)
	put(ts.URL+"/docs/big", map[string]string{"term": term})
	total := *depth * (*depth - 1) / 2
	fmt.Printf("seeded chain of depth %d: %d answers expected\n", *depth, total)

	// Page through Q(x, y) <- B(x), Child+(x, y), B(y) in document order.
	answers, pages := 0, 0
	cursor := ""
	var firstCursor string
	for {
		req := map[string]any{
			"source": "Q(x, y) <- B(x), Child+(x, y), B(y)",
			"mode":   "tuples",
			"docs":   []string{"big"},
			"order":  []string{"asc", "asc"},
			"limit":  *page,
		}
		if cursor != "" {
			req["cursor"] = cursor
		}
		var resp struct {
			Results []struct {
				Tuples []json.RawMessage `json:"tuples"`
			} `json:"results"`
			NextCursor string `json:"next_cursor"`
		}
		status := post(ts.URL+"/eval", req, &resp)
		if status != http.StatusOK {
			log.Fatalf("page %d: status %d", pages, status)
		}
		answers += len(resp.Results[0].Tuples)
		pages++
		if pages == 1 && resp.NextCursor != "" {
			firstCursor = resp.NextCursor
			fmt.Printf("cursor after page 1 (%d bytes): %.40s...\n", len(firstCursor), firstCursor)
		}
		if resp.NextCursor == "" {
			break
		}
		cursor = resp.NextCursor
	}
	fmt.Printf("walked %d pages of %d: %d answers\n", pages, *page, answers)
	if answers != total {
		log.Fatalf("union has %d answers, want %d", answers, total)
	}
	fmt.Println("union matches the closed form: OK")

	// Cursors are bound to document content: replace the document and the
	// old cursor is rejected as 410 Gone, not silently misapplied.
	put(ts.URL+"/docs/big", map[string]string{"term": "A(B(B))"})
	req := map[string]any{
		"source": "Q(x, y) <- B(x), Child+(x, y), B(y)",
		"mode":   "tuples",
		"docs":   []string{"big"},
		"order":  []string{"asc", "asc"},
		"cursor": firstCursor,
	}
	if status := post(ts.URL+"/eval", req, nil); status != http.StatusGone {
		log.Fatalf("stale cursor: status %d, want %d", status, http.StatusGone)
	}
	fmt.Println("stale cursor rejected with 410 Gone: OK")
}

func put(url string, body any) {
	blob, _ := json.Marshal(body)
	req, _ := http.NewRequest("PUT", url, bytes.NewReader(blob))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		log.Fatalf("PUT %s: status %d", url, resp.StatusCode)
	}
}

func post(url string, body, out any) int {
	blob, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatal(err)
		}
	}
	return resp.StatusCode
}
