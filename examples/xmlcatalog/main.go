// Command xmlcatalog queries an XML document with both Core XPath and
// conjunctive queries, round-tripping between the two (the §1
// "XML Queries" motivation and Remark 6.1): XPath expressions are
// translated to acyclic CQs, evaluated by the dichotomy engine, and CQ
// answers are cross-checked against direct XPath evaluation.
package main

import (
	"fmt"
	"log"
	"strings"

	cqtrees "repro"
	"repro/internal/xpath"
)

const catalog = `
<catalog>
  <category name="databases">
    <book year="2004"><title/><author/><author/></book>
    <book year="1995"><title/><author/></book>
  </category>
  <category name="theory">
    <book year="1977"><title/><author/><award/></book>
    <journal year="2006"><title/><article/><article/></journal>
  </category>
  <errata/>
</catalog>`

func main() {
	t, err := cqtrees.ParseXML(strings.NewReader(catalog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d nodes, height %d\n\n", t.Len(), t.Height())

	paths := []string{
		"//book",
		"//book[child::award]",
		"//category/child::book[child::author]",
		"//title/following::article",
		"//book/following-sibling::journal",
		"//author/ancestor::category",
	}
	for _, src := range paths {
		e, err := cqtrees.ParseXPath(src)
		if err != nil {
			log.Fatalf("parse %q: %v", src, err)
		}
		direct := cqtrees.EvaluateXPath(t, e)

		// Round trip through the conjunctive-query engine.
		q, err := xpath.ToCQ(e)
		if err != nil {
			log.Fatalf("ToCQ(%q): %v", src, err)
		}
		viaCQ := cqtrees.EvaluateNodes(t, q)
		status := "OK"
		if len(direct) != len(viaCQ) {
			status = "MISMATCH"
		}
		fmt.Printf("%-45s -> %2d nodes  [plan %-22s] %s\n",
			src, len(direct), cqtrees.PlanFor(q).Strategy, status)
	}

	// A query XPath cannot state directly as one path — a cyclic CQ —
	// answered by the engine and then exported back to XPath as a union.
	q := cqtrees.MustParseQuery(
		"Q(b) <- book(b), Child(b, t), title(t), Child(b, a), author(a), Following(t, a)")
	fmt.Printf("\ncyclic CQ: %s\n", q)
	answers := cqtrees.EvaluateNodes(t, q)
	fmt.Printf("books whose title precedes an author: %d\n", len(answers))
	exprs, err := cqtrees.ToXPath(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent XPath union (%d expressions):\n", len(exprs))
	for _, e := range exprs {
		fmt.Println("  ", e)
	}
}
