package cqtrees

// Benchmark harness: one benchmark family per table and figure of the
// paper (see DESIGN.md §2 and EXPERIMENTS.md for the index and the
// measured shapes).
//
//	Table I  -> BenchmarkTableIPolyScaling, BenchmarkTableINPHardness,
//	            BenchmarkTableIStrategies
//	Table II -> BenchmarkTheorem52Reduction (machine-computed NANDs)
//	Fig. 1   -> BenchmarkFig1Treebank
//	Fig. 2   -> BenchmarkXPropertyCheck
//	Fig. 4   -> BenchmarkTheorem51Reduction
//	Fig. 8   -> BenchmarkRewriteFig8
//	Fig. 9   -> BenchmarkSuccinctnessBlowup
//	ablations: BenchmarkACEngines, BenchmarkMACAblation,
//	            BenchmarkAxisHoldsVsMaterialized
import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/onethree"
	"repro/internal/rewrite"
	"repro/internal/succinct"
	"repro/internal/tree"
	"repro/internal/treebank"
	"repro/internal/xprop"
)

// benchQuery builds a random Boolean query over the given axes.
func benchQuery(rng *rand.Rand, axes []axis.Axis, nv, na int) *cq.Query {
	q := cq.New()
	vars := make([]cq.Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < na; i++ {
		x := rng.Intn(nv)
		y := rng.Intn(nv)
		if x == y { // avoid self-loops: irreflexive self-atoms degenerate
			y = (y + 1) % nv
		}
		q.AddAtom(axes[rng.Intn(len(axes))], vars[x], vars[y])
	}
	q.AddLabel("A", vars[0])
	return q
}

// BenchmarkTableIPolyScaling measures the Theorem 3.5 engine on the three
// maximal tractable signatures across growing trees: the paper's claim is
// O(‖A‖·|Q|), so time per evaluation should grow near-linearly with n.
func BenchmarkTableIPolyScaling(b *testing.B) {
	sigs := map[string][]axis.Axis{
		"VerticalClosure": {axis.ChildPlus, axis.ChildStar},
		"Following":       {axis.Following},
		"ChildSibling":    {axis.Child, axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar},
	}
	for name, sig := range sigs {
		for _, n := range []int{500, 1000, 2000, 4000} {
			b.Run(fmt.Sprintf("sig=%s/n=%d", name, n), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				t := tree.Random(rng, tree.DefaultRandomConfig(n))
				q := benchQuery(rng, sig, 6, 8)
				engine, err := core.NewPolyEngine(sig)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.EvalBoolean(t, q)
				}
			})
		}
	}
}

// BenchmarkTableINPHardness demonstrates the hardness side: on the fixed
// Theorem 5.1 tree, backtracking effort on the reduction queries grows
// with the instance, and unsatisfiable instances are the worst case. The
// search-step metric is reported per evaluation.
func BenchmarkTableINPHardness(b *testing.B) {
	t := onethree.Theorem51Tree()
	for _, k := range []int{4, 5} {
		// Unsatisfiable family: all 3-subsets of k variables force
		// refutation (3·#true ≠ clause count under exactly-one).
		ins := &onethree.Instance{NumVars: k}
		for a := 0; a < k; a++ {
			for bb := a + 1; bb < k; bb++ {
				for c := bb + 1; c < k; c++ {
					ins.Clauses = append(ins.Clauses, onethree.Clause{a, bb, c})
				}
			}
		}
		if ins.Satisfiable() {
			b.Fatal("hardness family must be unsatisfiable")
		}
		q := onethree.Theorem51Query(ins, false)
		for _, mode := range []string{"mac", "forward-checking"} {
			b.Run(fmt.Sprintf("vars=%d/%s", k, mode), func(b *testing.B) {
				engine := core.NewBacktrackEngine()
				engine.Propagate = mode == "mac"
				// Plain forward checking explodes (>50M search steps on
				// vars=4): cap the budget and report steps — the capped
				// metric still exhibits the exponential-vs-poly contrast.
				engine.MaxSteps = 1_000_000
				steps := 0
				for i := 0; i < b.N; i++ {
					func() {
						defer func() {
							if r := recover(); r != nil && r != core.ErrSearchBudget {
								panic(r)
							}
						}()
						engine.EvalBoolean(t, q)
					}()
					steps += engine.Steps()
				}
				b.ReportMetric(float64(steps)/float64(b.N), "search-steps/op")
				b.ReportMetric(float64(q.Size()), "query-atoms")
			})
		}
	}
}

// BenchmarkTableIStrategies compares the three strategies on a tractable
// acyclic query — the "who wins" comparison: Yannakakis and the
// X-property engine must beat backtracking.
func BenchmarkTableIStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	t := tree.Random(rng, tree.DefaultRandomConfig(2000))
	q := cq.MustParse("Q() <- A(x), Child+(x, y), B(y), Child+(y, z), C(z)")
	b.Run("acyclic-yannakakis", func(b *testing.B) {
		e := core.NewAcyclicEngine()
		for i := 0; i < b.N; i++ {
			e.EvalBoolean(t, q)
		}
	})
	b.Run("x-property", func(b *testing.B) {
		e, err := core.NewPolyEngineFor(q)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			e.EvalBoolean(t, q)
		}
	})
	b.Run("backtracking", func(b *testing.B) {
		e := core.NewBacktrackEngine()
		for i := 0; i < b.N; i++ {
			e.EvalBoolean(t, q)
		}
	})
}

// BenchmarkTheorem52Reduction (Table II / Fig. 5): building the τ6 gadget
// (with machine-computed NAND distances) and deciding encoded instances.
func BenchmarkTheorem52Reduction(b *testing.B) {
	b.Run("build-gadget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onethree.BuildTheorem52(); err != nil {
				b.Fatal(err)
			}
		}
	})
	g := onethree.MustBuildTheorem52()
	for _, m := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("decide/clauses=%d", m), func(b *testing.B) {
			ins := &onethree.Instance{NumVars: m + 2}
			for i := 0; i < m; i++ {
				ins.Clauses = append(ins.Clauses, onethree.Clause{i, i + 1, i + 2})
			}
			q := g.Theorem52Query(ins)
			engine := core.NewBacktrackEngine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.EvalBoolean(g.Tree, q)
			}
			b.ReportMetric(float64(q.Size()), "query-atoms")
		})
	}
}

// BenchmarkFig1Treebank evaluates the Fig. 1 linguistics query on the
// synthetic corpus, comparing direct (backtracking) evaluation with the
// translate-then-evaluate-acyclic strategy the paper recommends in §1.1.
func BenchmarkFig1Treebank(b *testing.B) {
	corpus := treebank.Generate(treebank.Config{Sentences: 96, MaxDepth: 6, Seed: 1})
	q := rewrite.Figure1Query()
	b.Run("direct-backtracking", func(b *testing.B) {
		e := core.NewBacktrackEngine()
		for i := 0; i < b.N; i++ {
			e.EvalAll(corpus.Combined, q)
		}
	})
	b.Run("via-apq", func(b *testing.B) {
		apq, err := rewrite.TranslateCQ(q, rewrite.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apq.EvalAll(corpus.Combined)
		}
	})
}

// BenchmarkXPropertyCheck (Fig. 2): brute-force X-property verification
// on growing trees for the Theorem 4.1 axis/order pairs.
func BenchmarkXPropertyCheck(b *testing.B) {
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			t := tree.Random(rng, tree.DefaultRandomConfig(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := xprop.Check(t, axis.ChildPlus, axis.PreOrder); !ok {
					b.Fatal("Child+ must be X w.r.t. <pre")
				}
			}
		})
	}
}

// BenchmarkTheorem51Reduction (Fig. 4): end-to-end reduction pipeline —
// encode a 1-in-3 3SAT instance and decide it on the fixed tree.
func BenchmarkTheorem51Reduction(b *testing.B) {
	t := onethree.Theorem51Tree()
	rng := rand.New(rand.NewSource(10))
	for _, m := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("clauses=%d", m), func(b *testing.B) {
			ins := onethree.Random(rng, m+2, m)
			engine := core.NewBacktrackEngine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := onethree.Theorem51Query(ins, false)
				engine.EvalBoolean(t, q)
			}
		})
	}
}

// BenchmarkRewriteFig8: the Theorem 6.10 translation of the introduction
// query (Fig. 8's walkthrough) and of the Fig. 1 query.
func BenchmarkRewriteFig8(b *testing.B) {
	b.Run("intro-query", func(b *testing.B) {
		q := rewrite.IntroQuery()
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.TranslateCQ(q, rewrite.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig1-query", func(b *testing.B) {
		q := rewrite.Figure1Query()
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.TranslateCQ(q, rewrite.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSuccinctnessBlowup (Fig. 9 / Thm 7.1): the diamond family's
// APQ sizes, reported as metrics — the shape must be exponential in n.
func BenchmarkSuccinctnessBlowup(b *testing.B) {
	for n := 1; n <= 4; n++ {
		b.Run(fmt.Sprintf("D%d", n), func(b *testing.B) {
			d := succinct.Diamond(n)
			var atoms, disjuncts int
			for i := 0; i < b.N; i++ {
				apq, err := rewrite.RewriteToAPQ(d, rewrite.Options{})
				if err != nil {
					b.Fatal(err)
				}
				atoms, disjuncts = apq.Size(), len(apq.Disjuncts)
			}
			b.ReportMetric(float64(atoms), "apq-atoms")
			b.ReportMetric(float64(disjuncts), "apq-disjuncts")
			b.ReportMetric(float64(d.Size()), "cq-atoms")
		})
	}
}

// BenchmarkACEngines (ablation): paper-exact Horn-SAT arc consistency
// versus the optimized deletion-only engine, across tree sizes. HornAC
// materializes transitive relations (Θ(n²) program size); FastAC stays
// near-linear.
func BenchmarkACEngines(b *testing.B) {
	q := cq.MustParse("Q() <- A(x), Child+(x, y), B(y), Child*(y, z), Child+(x, z)")
	for _, n := range []int{200, 400, 800} {
		rng := rand.New(rand.NewSource(3))
		t := tree.Random(rng, tree.DefaultRandomConfig(n))
		b.Run(fmt.Sprintf("fast/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				consistency.FastAC(t, q)
			}
		})
		b.Run(fmt.Sprintf("horn/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				consistency.HornAC(t, q)
			}
		})
	}
}

// BenchmarkMACAblation (ablation): backtracking with and without
// arc-consistency maintenance on a reduction query.
func BenchmarkMACAblation(b *testing.B) {
	t := onethree.Theorem51Tree()
	ins := &onethree.Instance{NumVars: 5, Clauses: []onethree.Clause{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}}
	q := onethree.Theorem51Query(ins, false)
	b.Run("mac", func(b *testing.B) {
		e := core.NewBacktrackEngine()
		for i := 0; i < b.N; i++ {
			e.EvalBoolean(t, q)
		}
	})
	b.Run("forward-checking", func(b *testing.B) {
		e := core.NewBacktrackEngine()
		e.Propagate = false
		for i := 0; i < b.N; i++ {
			e.EvalBoolean(t, q)
		}
	})
}

// BenchmarkAxisHoldsVsMaterialized (ablation): O(1) interval-based axis
// tests versus lookups in a materialized relation.
func BenchmarkAxisHoldsVsMaterialized(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	t := tree.Random(rng, tree.DefaultRandomConfig(1000))
	n := tree.NodeID(t.Len())
	b.Run("interval-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := tree.NodeID(i) % n
			v := tree.NodeID(i*7) % n
			axis.Holds(t, axis.ChildPlus, u, v)
		}
	})
	b.Run("materialized-lookup", func(b *testing.B) {
		pairs := axis.Pairs(t, axis.ChildPlus)
		set := make(map[[2]tree.NodeID]bool, len(pairs))
		for _, p := range pairs {
			set[p] = true
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := tree.NodeID(i) % n
			v := tree.NodeID(i*7) % n
			_ = set[[2]tree.NodeID{u, v}]
		}
	})
}

// BenchmarkEvaluateFacade exercises the public API end to end.
func BenchmarkEvaluateFacade(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	t := tree.Random(rng, tree.DefaultRandomConfig(1500))
	q := MustParseQuery("Q(y) <- A(x), Child+(x, y), B(y)")
	for i := 0; i < b.N; i++ {
		EvaluateAll(t, q)
	}
}

// BenchmarkPreparedVsOneShot measures the prepare/execute split: the
// prepared eval-many path versus paying classification, planning and
// evaluation-state allocation on every call. Allocations per evaluation
// are the headline metric — the prepared path reuses pooled domain tables,
// semijoin buffers and tree indexes.
func BenchmarkPreparedVsOneShot(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	big := tree.Random(rng, tree.DefaultRandomConfig(1500))
	small := tree.Random(rng, tree.DefaultRandomConfig(200))
	cases := []struct {
		name string
		src  string
		tr   *Tree
	}{
		{"acyclic", "Q(y) <- A(x), Child+(x, y), B(y)", big},
		{"xproperty", "Q() <- A(x), Child+(x, y), B(y), Child*(y, z), Child+(x, z)", big},
		{"backtrack", "Q(y) <- A(x), Child(x, y), B(y), Child+(x, z), C(z), Following(y, z)", small},
	}
	for _, c := range cases {
		q := MustParseQuery(c.src)
		b.Run(c.name+"/oneshot", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh engine per call: the pre-refactor cost model
				// (re-classify, re-plan, re-allocate state every time).
				core.NewEngine().EvalAll(c.tr, q)
			}
		})
		b.Run(c.name+"/prepared", func(b *testing.B) {
			pq := MustPrepare(q)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pq.All(c.tr)
			}
		})
	}
	// The server shape: one prepared query, many goroutines, many trees.
	pq := MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	trees := []*Tree{big, tree.Random(rng, tree.DefaultRandomConfig(1000))}
	b.Run("acyclic/prepared-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				pq.All(trees[i%len(trees)])
				i++
			}
		})
	})
}
