package cqtrees_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	cqtrees "repro"
)

// The canonical server pattern: prepare each distinct query once, index
// each distinct document once, and execute through the range-over-func
// iterators. Both artifacts are immutable and safe to share across
// goroutines.
func Example_documents() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B))"))
	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")

	for tuple := range pq.Tuples(doc) {
		fmt.Println(tuple)
	}
	// Output:
	// [1]
	// [3]
}

// NodeSeq streams the answer nodes of a monadic query; breaking out of
// the loop stops the underlying engine immediately.
func ExamplePreparedQuery_NodeSeq() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B),B)"))
	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")

	for v := range pq.NodeSeq(doc) {
		fmt.Println("first answer:", v)
		break
	}
	// Output:
	// first answer: 1
}

// WithOrder streams answers in lexicographic document order over the
// head tuple — here the first position descending, the second ascending —
// with no sort and no buffering under the tractable strategies, and
// WithLimit stops the engine inside its descent after the page is full.
func ExamplePreparedQuery_order() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,A(B,B),B)"))
	pq := cqtrees.MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")

	tuples, err := pq.AllErr(doc, cqtrees.WithOrder(cqtrees.Desc, cqtrees.Asc), cqtrees.WithLimit(3))
	fmt.Println(tuples, err)
	// Output:
	// [[2 3] [2 4] [0 1]] <nil>
}

// Corpus.Page fetches one page of a query's answers and a resumable
// cursor: an opaque token that a later call resumes from in
// O(depth + page), bound to the document's content version — if the
// document is swapped, the stale cursor is rejected instead of silently
// returning answers from the wrong tree.
func ExampleCorpus_paginate() {
	c := cqtrees.NewCorpus()
	if err := c.Add("doc", cqtrees.Index(cqtrees.MustParseTree("A(B,A(B,B),B)"))); err != nil {
		panic(err)
	}
	pq := cqtrees.MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")

	page, err := c.Page(pq, "doc", cqtrees.WithLimit(2))
	fmt.Println(page.Tuples, page.Next != "", err)

	rest, err := c.Page(pq, "doc", cqtrees.WithCursor(page.Next))
	fmt.Println(rest.Tuples, rest.Next != "", err)

	// Swapping the document invalidates outstanding cursors.
	if _, err := c.Swap("doc", cqtrees.Index(cqtrees.MustParseTree("A(B)"))); err != nil {
		panic(err)
	}
	_, err = c.Page(pq, "doc", cqtrees.WithCursor(page.Next))
	fmt.Println(errors.Is(err, cqtrees.ErrCursorStale))
	// Output:
	// [[0 1] [0 3]] true <nil>
	// [[0 4] [0 5] [2 3] [2 4]] false <nil>
	// true
}

// The error-returning tier replaces the legacy "panics if not monadic"
// contract with a typed ErrNotMonadic, and accepts a context whose
// cancellation is checked during enumeration.
func ExamplePreparedQuery_NodesErr() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B))"))
	binary := cqtrees.MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")

	_, err := binary.NodesErr(doc)
	fmt.Println(errors.Is(err, cqtrees.ErrNotMonadic))

	monadic := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	nodes, err := monadic.NodesErr(doc, cqtrees.WithContext(context.Background()))
	fmt.Println(nodes, err)
	// Output:
	// true
	// [1 3] <nil>
}

// Snapshots round-trip a Document through disk without re-parsing or
// re-indexing: SaveDocumentFile writes the zero-copy format and
// LoadDocumentFile maps it straight back into an evaluable Document.
func ExampleLoadDocumentFile() {
	path := filepath.Join(os.TempDir(), "example-doc.cqsnap")
	defer os.Remove(path)

	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B))"))
	if err := cqtrees.SaveDocumentFile(path, doc); err != nil {
		panic(err)
	}
	loaded, err := cqtrees.LoadDocumentFile(path)
	if err != nil {
		panic(err)
	}

	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	nodes, err := pq.NodesErr(loaded)
	fmt.Println(nodes, err)
	// Output:
	// [1 3] <nil>
}

// A Corpus is the serving-tier document registry: named, byte-budgeted,
// LRU-evicting, with batch evaluation across the fleet.
func ExampleNewCorpus() {
	c := cqtrees.NewCorpus(cqtrees.WithMaxBytes(64 << 20))
	for name, term := range map[string]string{"a": "A(B)", "b": "A(B,C(B))"} {
		if err := c.Add(name, cqtrees.Index(cqtrees.MustParseTree(term))); err != nil {
			panic(err)
		}
	}

	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	for r := range c.Nodes(pq) {
		fmt.Println(r.Doc, r.Nodes, r.Err)
	}
	// Output:
	// a [1] <nil>
	// b [1 3] <nil>
}
