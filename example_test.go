package cqtrees_test

import (
	"context"
	"errors"
	"fmt"

	cqtrees "repro"
)

// The canonical server pattern: prepare each distinct query once, index
// each distinct document once, and execute through the range-over-func
// iterators. Both artifacts are immutable and safe to share across
// goroutines.
func Example_documents() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B))"))
	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")

	for tuple := range pq.Tuples(doc) {
		fmt.Println(tuple)
	}
	// Output:
	// [1]
	// [3]
}

// NodeSeq streams the answer nodes of a monadic query; breaking out of
// the loop stops the underlying engine immediately.
func ExamplePreparedQuery_NodeSeq() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B),B)"))
	pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")

	for v := range pq.NodeSeq(doc) {
		fmt.Println("first answer:", v)
		break
	}
	// Output:
	// first answer: 1
}

// The error-returning tier replaces the legacy "panics if not monadic"
// contract with a typed ErrNotMonadic, and accepts a context whose
// cancellation is checked during enumeration.
func ExamplePreparedQuery_NodesErr() {
	doc := cqtrees.Index(cqtrees.MustParseTree("A(B,C(B))"))
	binary := cqtrees.MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")

	_, err := binary.NodesErr(doc)
	fmt.Println(errors.Is(err, cqtrees.ErrNotMonadic))

	monadic := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	nodes, err := monadic.NodesErr(doc, cqtrees.WithContext(context.Background()))
	fmt.Println(nodes, err)
	// Output:
	// true
	// [1 3] <nil>
}
