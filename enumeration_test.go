package cqtrees

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/tree"
)

// collectTuples drains ForEachTuple into an owned, sorted slice (the
// callback's tuple buffer is reused, so it must be copied).
func collectTuples(pq *PreparedQuery, tr *Tree) [][]NodeID {
	var out [][]NodeID
	pq.ForEachTuple(tr, func(tuple []NodeID) bool {
		cp := make([]NodeID, len(tuple))
		copy(cp, tuple)
		out = append(out, cp)
		return true
	})
	sortTuplesLex(out)
	return out
}

func sortTuplesLex(out [][]NodeID) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			less := false
			for k := range out[j] {
				if out[j][k] != out[j-1][k] {
					less = out[j][k] < out[j-1][k]
					break
				}
			}
			if !less {
				break
			}
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// TestStreamingMatchesOracle: on random trees and queries, the streamed
// tuple set must equal the brute-force oracle (and the materialized All)
// under every strategy; streamed tuples must be pairwise distinct.
func TestStreamingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	alphabet := []string{"A", "B", "C"}
	hit := map[core.Strategy]int{}
	for trial := 0; trial < 160; trial++ {
		cfg := parityConfigs[trial%len(parityConfigs)]
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes:       1 + rng.Intn(11),
			MaxChildren: 3,
			Alphabet:    alphabet,
		})
		q := randomQuery(rng, cfg.axes, 2+rng.Intn(3), 1+rng.Intn(4), alphabet)
		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", cfg.name, err)
		}
		hit[pq.Plan().Strategy]++

		got := collectTuples(pq, tr)
		want := core.ReferenceEvalAll(tr, q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s trial %d: streamed %v != oracle %v\nq = %s\ntree = %s",
				cfg.name, trial, got, want, q, tr)
		}
		if all := pq.All(tr); !reflect.DeepEqual(all, want) {
			t.Fatalf("%s trial %d: All %v != oracle %v\nq = %s\ntree = %s",
				cfg.name, trial, all, want, q, tr)
		}
		// Distinctness of the stream.
		seen := map[string]bool{}
		for _, tp := range got {
			k := fmt.Sprint(tp)
			if seen[k] {
				t.Fatalf("%s trial %d: duplicate streamed tuple %v", cfg.name, trial, tp)
			}
			seen[k] = true
		}
		// Monadic: ForEachNode must agree with Nodes and with the oracle.
		if len(q.Head) == 1 {
			var nodes []NodeID
			pq.ForEachNode(tr, func(v NodeID) bool {
				nodes = append(nodes, v)
				return true
			})
			flat := make([]NodeID, len(want))
			for i, tp := range want {
				flat[i] = tp[0]
			}
			sortNodes(nodes)
			if !reflect.DeepEqual(nodes, flat) && !(len(nodes) == 0 && len(flat) == 0) {
				t.Fatalf("%s trial %d: ForEachNode %v != oracle %v\nq = %s\ntree = %s",
					cfg.name, trial, nodes, flat, q, tr)
			}
			if ns := pq.Nodes(tr); !reflect.DeepEqual(ns, flat) && !(len(ns) == 0 && len(flat) == 0) {
				t.Fatalf("%s trial %d: Nodes %v != oracle %v", cfg.name, trial, ns, flat)
			}
		}
		// Streaming again on the same PreparedQuery (scratch reuse) must
		// not drift.
		if again := collectTuples(pq, tr); !reflect.DeepEqual(again, got) {
			t.Fatalf("%s trial %d: re-stream drifted: %v then %v", cfg.name, trial, got, again)
		}
	}
	for _, s := range []core.Strategy{core.StrategyAcyclic, core.StrategyXProperty, core.StrategyBacktrack} {
		if hit[s] == 0 {
			t.Errorf("streaming parity never exercised strategy %v", s)
		}
	}
	t.Logf("strategy coverage: %v", hit)
}

func sortNodes(ns []NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// TestStreamingEarlyExit: returning false from the callback must stop
// enumeration immediately — the callback runs exactly min(limit, |answer|)
// times — for every strategy and for both tuple and node streaming.
func TestStreamingEarlyExit(t *testing.T) {
	queries := map[string]string{
		"acyclic":   "Q(y) <- A(x), Child+(x, y), B(y)",
		"xproperty": "Q(y) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)",
		"backtrack": "Q(y) <- A(x), Child(x, y), B(y), Child+(x, z), C(z), Following(y, z)",
	}
	rng := rand.New(rand.NewSource(9))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 150, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	for name, src := range queries {
		t.Run(name, func(t *testing.T) {
			pq := MustCompile(src)
			total := len(pq.All(tr))
			if total < 2 {
				t.Fatalf("want >= 2 answers to make early exit meaningful, got %d", total)
			}
			for _, limit := range []int{1, 2, total, total + 5} {
				calls := 0
				pq.ForEachTuple(tr, func([]NodeID) bool {
					calls++
					return calls < limit
				})
				want := limit
				if want > total {
					want = total
				}
				if calls != want {
					t.Errorf("limit %d: ForEachTuple callback ran %d times, want %d", limit, calls, want)
				}
				calls = 0
				pq.ForEachNode(tr, func(NodeID) bool {
					calls++
					return calls < limit
				})
				if calls != want {
					t.Errorf("limit %d: ForEachNode callback ran %d times, want %d", limit, calls, want)
				}
			}
		})
	}
}

// TestParallelMatchesSequential: WithParallelism(n).All/Nodes must return
// exactly the sequential result on random trees and queries (and the
// derived handle must leave the original sequential).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 120; trial++ {
		cfg := parityConfigs[trial%len(parityConfigs)]
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes:       1 + rng.Intn(40),
			MaxChildren: 4,
			Alphabet:    alphabet,
		})
		q := randomQuery(rng, cfg.axes, 2+rng.Intn(3), 1+rng.Intn(4), alphabet)
		pq, err := Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		want := pq.All(tr)
		for _, workers := range []int{2, 4} {
			par := pq.WithParallelism(workers)
			if got := par.All(tr); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d (workers=%d): parallel All %v != sequential %v\nq = %s\ntree = %s",
					cfg.name, trial, workers, got, want, q, tr)
			}
			if len(q.Head) == 1 {
				if got, seq := par.Nodes(tr), pq.Nodes(tr); !reflect.DeepEqual(got, seq) {
					t.Fatalf("%s trial %d (workers=%d): parallel Nodes %v != sequential %v",
						cfg.name, trial, workers, got, seq)
				}
			}
		}
		if got := pq.All(tr); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s trial %d: WithParallelism mutated the original handle", cfg.name, trial)
		}
	}
}

// TestParallelEnumerationConcurrent drives parallel enumeration from many
// goroutines at once on a shared PreparedQuery — under -race this proves
// the sharded workers, pooled scratches and shared PinBase snapshots are
// data-race free.
func TestParallelEnumerationConcurrent(t *testing.T) {
	queries := map[string]string{
		"acyclic":   "Q(x, y) <- A(x), Child+(x, y), B(y)",
		"xproperty": "Q(y) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)",
	}
	rng := rand.New(rand.NewSource(7))
	trees := []*Tree{
		tree.Random(rng, tree.RandomConfig{Nodes: 200, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}}),
		tree.Random(rng, tree.RandomConfig{Nodes: 60, MaxChildren: 5, Alphabet: []string{"A", "B", "C"}}),
	}
	for name, src := range queries {
		t.Run(name, func(t *testing.T) {
			pq := MustCompile(src).WithParallelism(4)
			want := make([][][]NodeID, len(trees))
			for i, tr := range trees {
				want[i] = pq.All(tr)
				if len(want[i]) == 0 {
					t.Fatalf("tree %d: want answers for a meaningful race test", i)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, 32)
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for it := 0; it < 10; it++ {
						i := (g + it) % len(trees)
						if got := pq.All(trees[i]); !reflect.DeepEqual(got, want[i]) {
							errs <- fmt.Errorf("goroutine %d tree %d: %v != %v", g, i, got, want[i])
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestMonadicFastPathLegacyAPI: the legacy one-shot EvaluateNodes and the
// engine EvalMonadic must agree with the streamed fast path (they now
// route through it) and with the oracle.
func TestMonadicFastPathLegacyAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 60; trial++ {
		cfg := parityConfigs[trial%len(parityConfigs)]
		tr := tree.Random(rng, tree.RandomConfig{Nodes: 1 + rng.Intn(12), MaxChildren: 3, Alphabet: alphabet})
		q := randomQuery(rng, cfg.axes, 2+rng.Intn(3), 1+rng.Intn(3), alphabet)
		// Force a monadic head.
		q.SetHead(cq.Var(rng.Intn(q.NumVars())))
		ref := core.ReferenceEvalAll(tr, q)
		flat := make([]NodeID, len(ref))
		for i, tp := range ref {
			flat[i] = tp[0]
		}
		got := EvaluateNodes(tr, q)
		if !reflect.DeepEqual(got, flat) && !(len(got) == 0 && len(flat) == 0) {
			t.Fatalf("%s trial %d: EvaluateNodes %v != oracle %v\nq = %s\ntree = %s",
				cfg.name, trial, got, flat, q, tr)
		}
	}
}
