package cqtrees

import (
	"os"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/snapshot"
)

// Snapshot format errors, re-exported for errors.Is matching without
// importing the internal package. LoadDocument wraps every decode failure
// in one of these; the decoder never panics on hostile input.
var (
	// ErrSnapshotTruncated reports input shorter than its own length
	// prefixes claim.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotBadMagic reports input that is not a snapshot at all.
	ErrSnapshotBadMagic = snapshot.ErrBadMagic
	// ErrSnapshotVersion reports a format version this build cannot read.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotChecksum reports a failed integrity check.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotCorrupt reports structurally invalid section contents
	// (bad offsets, out-of-range ids) behind a valid checksum.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
)

// SnapshotVersion is the snapshot format version this build reads and
// writes. Any change to the encoding bumps it; the golden-fixture test
// under testdata/ forces the bump to be explicit.
const SnapshotVersion = snapshot.Version

// LoadDocument reconstructs a Document from snapshot bytes — the output
// of Document.WriteTo or Document.Snapshot — without re-parsing or
// re-indexing. The tree orders and index tables are adopted from data
// directly (zero-copy views when data is 8-byte aligned, as
// LoadDocumentFile guarantees; an element-wise copy otherwise), so the
// returned document aliases data and the caller must not modify it.
// Decode failures return a typed error (see the ErrSnapshot* sentinels).
func LoadDocument(data []byte) (*Document, error) {
	return core.LoadDocument(data)
}

// LoadDocumentFile reads path and loads the document from it. The file
// is read into 8-byte-aligned memory, so the zero-copy path applies: the
// load costs one read plus per-section pointer fixups, not a parse and
// an index build.
func LoadDocumentFile(path string) (*Document, error) {
	data, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return core.LoadDocument(data)
}

// SaveDocumentFile writes doc's snapshot encoding to path (created or
// truncated, mode 0644).
func SaveDocumentFile(path string, doc *Document) error {
	return os.WriteFile(path, doc.Snapshot(), 0o644)
}

// IndexBuildCount returns the process-wide number of tree-index builds
// (Index or AddTree). Snapshot loads do not count: together with
// IndexLoadCount it makes "no hidden rebuilds" observable — a restart
// that recovers from snapshots moves only the load counter.
func IndexBuildCount() int64 { return consistency.IndexBuildCount() }

// IndexLoadCount returns the process-wide number of tree indexes adopted
// from snapshots (LoadDocument and corpus hydration).
func IndexLoadCount() int64 { return consistency.IndexLoadCount() }
