package cqtrees

// BenchmarkPaginate: the cursor's O(depth + page) resume versus the
// offset's O(skipped + page) scan, fetching the same page from the middle
// of a B-chain answer relation (~depth²/2 tuples). The scan leg's cost
// grows with the total answer count; the resume leg's does not — it
// re-descends directly to the recorded pin prefix — so page-k cost under
// cursors is independent of how deep into the result set k lies. The two
// legs are parity-checked before timing: both must return byte-identical
// pages, or the benchmark aborts.
//
//	…/scan    Paginate with WithOffset(total/2)
//	…/resume  Paginate with a cursor minted at total/2
//
// scripts/bench.sh pairs …/scan with …/resume into a speedup row;
// perfgate.sh enforces a floor on it in CI.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// chainDoc builds A over a B-chain of depth nodes — the cqload seed shape,
// giving depth·(depth−1)/2 answers for the chain query.
func chainDoc(depth int) *Document {
	var b strings.Builder
	b.Grow(depth*2 + 8)
	b.WriteString("A(")
	for i := 0; i < depth-1; i++ {
		b.WriteString("B(")
	}
	b.WriteString("B")
	b.WriteString(strings.Repeat(")", depth))
	return Index(MustParseTree(b.String()))
}

func BenchmarkPaginate(b *testing.B) {
	pq := MustCompile("Q(x, y) <- B(x), Child+(x, y), B(y)")
	const page = 100
	for _, depth := range []int{200, 800} {
		doc := chainDoc(depth)
		total := depth * (depth - 1) / 2
		mid := total / 2

		// Mint the resume cursor once, outside the timer, and check both
		// legs fetch the identical page before trusting the numbers.
		minted, err := pq.Paginate(doc, WithLimit(mid))
		if err != nil || minted.Next == "" {
			b.Fatalf("minting cursor at %d: next=%q err=%v", mid, minted.Next, err)
		}
		scanPage, err := pq.Paginate(doc, WithOffset(mid), WithLimit(page))
		if err != nil {
			b.Fatal(err)
		}
		resumePage, err := pq.Paginate(doc, WithCursor(minted.Next), WithLimit(page))
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(scanPage.Tuples, resumePage.Tuples) || len(scanPage.Tuples) != page {
			b.Fatalf("depth %d: scan/resume parity broken: %d vs %d tuples",
				depth, len(scanPage.Tuples), len(resumePage.Tuples))
		}

		b.Run(fmt.Sprintf("depth=%d/scan", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := pq.Paginate(doc, WithOffset(mid), WithLimit(page))
				if err != nil || len(p.Tuples) != page {
					b.Fatalf("scan: %d tuples, %v", len(p.Tuples), err)
				}
			}
		})
		b.Run(fmt.Sprintf("depth=%d/resume", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := pq.Paginate(doc, WithCursor(minted.Next), WithLimit(page))
				if err != nil || len(p.Tuples) != page {
					b.Fatalf("resume: %d tuples, %v", len(p.Tuples), err)
				}
			}
		})
	}
}
