#!/usr/bin/env bash
# perfgate.sh — compare a fresh bench run against the recorded baseline
# and fail on perf regressions.
#
# Usage: scripts/perfgate.sh [-m MAX_DROP_PCT] [-f MIN_GEOMEAN] [baseline.json] [new.json]
#        scripts/perfgate.sh -l [load.json]
#   defaults: BENCH_pr4.json BENCH_quick.json, 30 (% allowed drop), no floor
#
# -l switches to the load-report gate (PR 7): the single argument is a
# cqload JSON report (default BENCH_load_quick.json) and the gate checks
# serving-robustness invariants instead of speedup ratios:
#
#   - traffic flowed: requests > 0 and some 200s;
#   - overload stayed inside the contract: zero 5xx, and no status class
#     other than 200/429 (429 is admission shedding, which is correct);
#   - shutdown hygiene: goroutine_leak is false;
#   - streaming stayed flat: the NDJSON heap probe saw the stream
#     (tuples > 0) and its peak heap is under 64 MiB — an O(answers)
#     buffering regression is hundreds of MiB at the probe's relation
#     size, so the absolute tripwire is loose but decisive;
#   - the result cache worked: a run with -repeat set (PR 8) must show
#     nonzero cache hits in the /metrics-scraped cache section — a cache
#     that silently stopped hitting is a perf regression even though
#     every response stays correct. Reports without repeat pass vacuously.
#   - persistence stayed clean (PR 9): the /metrics-scraped persistence
#     section must show zero quarantines, zero quarantined documents, and
#     zero persist errors — a snapshot corrupted or lost while the server
#     was under load is a durability bug no matter what the client saw.
#     Old reports without the section pass vacuously.
#   - resumable pagination held (PR 10): a report carrying the -paginate
#     section must show parity_ok (the cursor walk's reassembled union is
#     byte-identical to a one-shot walk), >= 100k answers covered, and
#     zero 5xx along the walk. Reports without the section pass vacuously.
#
# Two comparisons run:
#
#  1. benchstat (if installed): the raw `go test -bench` text embedded in
#     both JSON files is fed to benchstat for the human-readable delta
#     table. This is informational — absolute ns/op is machine-dependent,
#     and CI runners are not the machine the baseline was recorded on.
#  2. The gate: the kernel-vs-probe *speedup ratios* recorded per
#     configuration. A ratio divides two timings from the same process on
#     the same machine, so it transfers across hardware — but a single
#     config's ratio is still noisy at smoke benchtimes, so the hard gate
#     is the GEOMETRIC MEAN of the ratios across all shared configs: if
#     the aggregate kernel advantage drops by more than MAX_DROP_PCT% of
#     the baseline aggregate, the kernels (or the density heuristic)
#     regressed for real. Per-config rows are printed for diagnosis but
#     do not fail the gate individually. Any baseline config missing from
#     the new run fails outright — silent benchmark loss must not pass.
#
# -f MIN_GEOMEAN additionally enforces an absolute floor: the fresh run's
# geomean speedup must be at least MIN_GEOMEAN, regardless of how it
# compares to the baseline. This pins acceptance criteria ("snapshot load
# >= 10x faster than parse+index") rather than mere non-regression.
#
# Both "speedups" (bench.sh current) and "speedups_kernel_vs_probe"
# (pre-PR6 files like BENCH_pr4.json) are understood.
#
# Exit status: 0 clean, 1 regression (or missing data), 2 usage/IO error.

set -euo pipefail
cd "$(dirname "$0")/.."

maxdrop=30
minmean=0
loadmode=0
while getopts 'lm:f:h' opt; do
	case "$opt" in
	l) loadmode=1 ;;
	m) maxdrop="$OPTARG" ;;
	f) minmean="$OPTARG" ;;
	h | *)
		sed -n '2,50p' "$0"
		exit 2
		;;
	esac
done
shift $((OPTIND - 1))

if [ "$loadmode" = 1 ]; then
	loadfile="${1:-BENCH_load_quick.json}"
	if [ ! -f "$loadfile" ]; then
		echo "perfgate: missing $loadfile" >&2
		exit 2
	fi
	echo "== load gate: $loadfile =="
	jq -r '"requests \(.requests)  rps \(.throughput_rps | floor)  p50 \(.latency.p50_ms)ms  p99 \(.latency.p99_ms)ms  status \(.status)  5xx \(.server_5xx)  leak \(.goroutine_leak)  stream_tuples \(.stream.tuples // 0)  stream_peak \((.stream.peak_heap_bytes // 0) / 1048576 | floor)MiB  cache_hit_rate \(.cache.hit_rate // 0)"' "$loadfile"
	fail=0
	check() { # check DESCRIPTION JQ_BOOL_EXPR
		if [ "$(jq -r "$2" "$loadfile")" != "true" ]; then
			echo "FAIL $1" >&2
			fail=1
		else
			echo "ok   $1"
		fi
	}
	check "traffic flowed (requests > 0, some 200s)" '.requests > 0 and ((.status["200"] // 0) > 0)'
	check "no server 5xx under load" '.server_5xx == 0'
	check "only 200/429 status classes" '.status | keys | all(. == "200" or . == "429")'
	check "no goroutine leak across shutdown" '.goroutine_leak == false'
	check "stream probe ran (tuples > 0)" '(.stream.tuples // 0) > 0'
	check "stream heap flat (peak < 64 MiB)" '(.stream.peak_heap_bytes // 0) < 67108864'
	check "cache hits when -repeat was set" '((.config.repeat // 0) == 0) or ((.cache.hits // 0) > 0)'
	check "no snapshot quarantined under load" '((.persistence.quarantines // 0) == 0) and ((.persistence.quarantined_docs // 0) == 0)'
	check "no persist errors under load" '(.persistence.persist_errors // 0) == 0'
	check "paginate walk parity (PR 10)" '(.paginate == null) or .paginate.parity_ok'
	check "paginate walk covered >= 100k answers" '(.paginate == null) or (.paginate.answers >= 100000)'
	check "paginate walk saw no 5xx" '(.paginate == null) or (.paginate.http_5xx == 0)'
	if [ "$fail" -ne 0 ]; then
		echo "perfgate: load-gate violation in $loadfile" >&2
		exit 1
	fi
	exit 0
fi
baseline="${1:-BENCH_pr4.json}"
fresh="${2:-BENCH_quick.json}"

for f in "$baseline" "$fresh"; do
	if [ ! -f "$f" ]; then
		echo "perfgate: missing $f" >&2
		exit 2
	fi
done

# jq extracts; the files are produced by scripts/bench.sh. Older files
# (BENCH_pr4.json) carry the pairs as "speedups_kernel_vs_probe", current
# ones as the generalized "speedups" — accept either.
extract_raw() { jq -r .raw "$1"; }
extract_speedups() { jq -r '(.speedups // .speedups_kernel_vs_probe)[] | "\(.config) \(.speedup)"' "$1"; }

echo "== benchstat ${baseline} vs ${fresh} (informational; cross-machine) =="
if command -v benchstat >/dev/null 2>&1; then
	old_txt="$(mktemp)" new_txt="$(mktemp)"
	trap 'rm -f "$old_txt" "$new_txt"' EXIT
	extract_raw "$baseline" >"$old_txt"
	extract_raw "$fresh" >"$new_txt"
	benchstat "$old_txt" "$new_txt" || true
else
	echo "benchstat not installed; skipping the delta table"
fi

echo
floor_note=""
if [ "$minmean" != 0 ]; then floor_note=", floor ${minmean}x"; fi
echo "== speedup-ratio gate (fail on >${maxdrop}% geomean drop${floor_note}) =="
base_sp="$(mktemp)" new_sp="$(mktemp)"
trap 'rm -f "${old_txt:-}" "${new_txt:-}" "$base_sp" "$new_sp"' EXIT
extract_speedups "$baseline" >"$base_sp"
extract_speedups "$fresh" >"$new_sp"

awk -v maxdrop="$maxdrop" -v minmean="$minmean" '
NR == FNR { new[$1] = $2; next }
{
	config = $1; old = $2
	if (!(config in new)) {
		printf "FAIL %-45s present in baseline, missing from new run\n", config
		missing++
		next
	}
	n++
	logold += log(old); lognew += log(new[config])
	drop = (old - new[config]) / old * 100
	printf "     %-45s baseline %8.2fx   now %8.2fx   (%+.0f%%)\n", config, old, new[config], -drop
}
END {
	if (missing) exit 1
	if (n == 0) { print "FAIL no shared configs to compare"; exit 1 }
	gold = exp(logold / n); gnew = exp(lognew / n)
	budget = gold * (1 - maxdrop / 100)
	if (minmean + 0 > budget) budget = minmean + 0
	verdict = (gnew < budget) ? "FAIL" : "ok"
	printf "%-4s geomean over %d configs: baseline %.2fx, now %.2fx (budget: >%.2fx)\n", \
		verdict, n, gold, gnew, budget
	if (verdict == "FAIL") exit 1
}' "$new_sp" "$base_sp" && status=0 || status=1

if [ "$status" -ne 0 ]; then
	echo "perfgate: regression detected (>${maxdrop}% aggregate drop, geomean below the -f floor, or missing config)" >&2
fi
exit "$status"
