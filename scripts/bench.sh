#!/usr/bin/env bash
# bench.sh — record the perf trajectory (benchstat-compatible).
#
# Default run: the BenchmarkRevise family (per-axis bulk image kernel vs.
# the per-node probe loop, across tree sizes and domain densities; every
# configuration self-checks kernel-vs-probe support counts before timing)
# plus the end-to-end BenchmarkFastACKernels ablation, into BENCH_pr4.json.
#
# The cold-start trajectory (snapshot load vs parse+index; PR 6) is the
# same script pointed at the root package:
#
#   scripts/bench.sh -b BenchmarkColdStart -p . -t 20x -o BENCH_pr6.json
#
# The result-cache trajectory (warm cache vs full evaluation; PR 8) is the
# same script again, pointed at the serving package:
#
#   scripts/bench.sh -b BenchmarkEvalCache -p ./internal/serve -t 200x -o BENCH_pr8.json
#
# The pagination trajectory (cursor resume vs offset scan; PR 10) is:
#
#   scripts/bench.sh -b BenchmarkPaginate -p . -t 20x -o BENCH_pr10.json
#
# The JSON keeps the raw `go test -bench` lines under "raw" — that text is
# what benchstat consumes, so `jq -r .raw BENCH_pr4.json > old.txt` followed
# by `benchstat old.txt new.txt` compares any later run against this
# baseline — alongside parsed per-benchmark entries and the derived
# speedups: benchmark names ending in a slow/fast suffix pair
# (…/probe vs …/kernel, …/parse vs …/snapshot, …/cold vs …/warm,
# …/scan vs …/resume) are
# matched per configuration and the ratio recorded under "speedups",
# which is what scripts/perfgate.sh gates on.
#
# The script is CI-safe: no interactive assumptions, explicit -benchtime /
# package / benchmark-regex flags, and a non-zero exit when `go test`
# fails (the benchmark families b.Fatalf on self-check mismatches, so a
# correctness regression fails the script, not just the numbers).
#
# Load mode (-l; PR 7) measures the serving layer instead of kernels: it
# runs cmd/cqload against an in-process cqserve (admission-controlled,
# closed loop, query mix bool/nodes/tuples) and records throughput,
# latency percentiles, per-status counts, the goroutine-leak check, and
# the NDJSON streaming heap probe. The recorded baseline is
# BENCH_pr7.json; quick (-l -q) writes BENCH_load_quick.json for CI's
# load-smoke job, gated by scripts/perfgate.sh -l.
#
# Usage: scripts/bench.sh [-q] [-l] [-o output.json] [-t benchtime] [-c count]
#                         [-b bench-regex] [-p packages]
#   -q            quick mode for CI smoke: -benchtime 20x, default output
#                 BENCH_quick.json (never clobbers the recorded baseline)
#   -l            load mode: run cmd/cqload instead of go test -bench
#                 (default output BENCH_pr7.json; BENCH_load_quick.json in -q)
#   -o FILE       output JSON (default BENCH_pr4.json; BENCH_quick.json in -q)
#   -t BENCHTIME  go test -benchtime value (default 200x; 20x in -q)
#   -c COUNT      go test -count value (default 1)
#   -b REGEX      benchmark regex (default 'BenchmarkRevise|BenchmarkFastACKernels')
#   -p PACKAGES   package list (default ./internal/consistency)
#
# Environment overrides BENCHTIME / COUNT are honored for compatibility
# with earlier revisions; flags win over environment.

set -euo pipefail
cd "$(dirname "$0")/.."

out=""
benchtime=""
count="${COUNT:-1}"
benchre='BenchmarkRevise|BenchmarkFastACKernels'
pkgs='./internal/consistency'
quick=0
loadmode=0

while getopts 'qlo:t:c:b:p:h' opt; do
	case "$opt" in
	q) quick=1 ;;
	l) loadmode=1 ;;
	o) out="$OPTARG" ;;
	t) benchtime="$OPTARG" ;;
	c) count="$OPTARG" ;;
	b) benchre="$OPTARG" ;;
	p) pkgs="$OPTARG" ;;
	h | *)
		sed -n '2,40p' "$0"
		exit 2
		;;
	esac
done
shift $((OPTIND - 1))

if [ "$loadmode" = 1 ]; then
	# Quick: a few seconds against a small deep corpus, sized so the
	# admission gate actually sheds (workers > max-inflight + max-queue).
	# Full: the recorded baseline — longer run, million-tuple stream probe.
	if [ $# -ge 1 ]; then out="$1"; fi
	# Both shapes run with the result cache on and a -repeat fraction, so
	# the report's cache section (scraped from /metrics) shows real hits —
	# perfgate's load gate requires hits whenever repeat was set. Both also
	# run with -data on a scratch snapshot directory, so every seeded PUT
	# exercises the crash-durable persist path and the report's persistence
	# section (quarantines, persist errors) gates on zero corruption.
	datadir="$(mktemp -d)"
	trap 'rm -rf "$datadir"' EXIT
	if [ "$quick" = 1 ]; then
		: "${out:=BENCH_load_quick.json}"
		go run ./cmd/cqload -self -duration 8s -docs 4 -depth 300 \
			-workers 12 -max-inflight 4 -max-queue 4 -queue-wait 2s \
			-retries 3 -repeat 0.5 -cache-bytes 67108864 \
			-data "$datadir" -stream-check -paginate 2000 -o "$out"
	else
		: "${out:=BENCH_pr7.json}"
		go run ./cmd/cqload -self -duration 20s -docs 8 -depth 1500 \
			-workers 16 -max-inflight 8 -max-queue 16 -queue-wait 5s \
			-retries 3 -repeat 0.5 -cache-bytes 268435456 \
			-data "$datadir" -stream-check -paginate 500 -o "$out"
	fi
	echo "wrote $out"
	exit 0
fi
# Positional output argument kept for compatibility: scripts/bench.sh out.json
if [ $# -ge 1 ]; then out="$1"; fi
# -t wins, then the BENCHTIME environment, then the mode default.
if [ -z "$benchtime" ]; then
	if [ -n "${BENCHTIME:-}" ]; then
		benchtime="$BENCHTIME"
	elif [ "$quick" = 1 ]; then
		benchtime="20x"
	else
		benchtime="200x"
	fi
fi
if [ "$quick" = 1 ]; then : "${out:=BENCH_quick.json}"; fi
: "${out:=BENCH_pr4.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086 # pkgs is a deliberate word-split list
go test -run xxx -bench "$benchre" \
	-benchtime "$benchtime" -count "$count" $pkgs | tee "$tmp"

awk -v benchtime="$benchtime" -v suite="$(basename "$out" .json)" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); gsub(/\t/, "\\t", s); return s }
{ raw = raw $0 "\\n" }
$1 == "goos:"   { goos = $2 }
$1 == "goarch:" { goarch = $2 }
$1 == "cpu:"    { cpu = $0; sub(/^cpu: */, "", cpu) }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
	n++
	names[n] = $1; sub(/-[0-9]+$/, "", names[n]) # strip GOMAXPROCS suffix
	iters[n] = $2
	nsop[n] = $3
}
END {
	# Slow/fast suffix pairs: a benchmark …/<slow> matched with its
	# sibling …/<fast> yields one speedup row per configuration.
	npair = split("probe:kernel parse:snapshot cold:warm scan:resume", pairdefs, " ")
	printf "{\n"
	printf "  \"suite\": \"%s\",\n", jesc(suite)
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\",\n", goos, goarch
	printf "  \"cpu\": \"%s\",\n", jesc(cpu)
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++)
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
			jesc(names[i]), iters[i], nsop[i], i < n ? "," : ""
	printf "  ],\n"
	printf "  \"speedups\": [\n"
	m = 0
	for (i = 1; i <= n; i++) {
		for (p = 1; p <= npair; p++) {
			split(pairdefs[p], sf, ":")
			if (names[i] !~ ("/" sf[1] "$")) continue
			base = names[i]; sub("/" sf[1] "$", "", base)
			for (j = 1; j <= n; j++)
				if (names[j] == base "/" sf[2])
					pairs[++m] = sprintf("    {\"config\": \"%s\", \"slow\": \"%s\", \"fast\": \"%s\", \"slow_ns\": %s, \"fast_ns\": %s, \"speedup\": %.2f}", \
						jesc(base), sf[1], sf[2], nsop[i], nsop[j], nsop[i] / nsop[j])
		}
	}
	for (i = 1; i <= m; i++) printf "%s%s\n", pairs[i], i < m ? "," : ""
	printf "  ],\n"
	printf "  \"raw\": \"%s\"\n", jesc(raw)
	printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
