#!/usr/bin/env bash
# bench.sh — record the revise-kernel perf trajectory.
#
# Runs the BenchmarkRevise family (per-axis bulk image kernel vs. the
# per-node probe loop, across tree sizes and domain densities; every
# configuration self-checks kernel-vs-probe support counts before timing)
# plus the end-to-end BenchmarkFastACKernels ablation, and emits a JSON
# trajectory file (default BENCH_pr4.json).
#
# The JSON keeps the raw `go test -bench` lines under "raw" — that text is
# what benchstat consumes, so `jq -r .raw BENCH_pr4.json > old.txt` followed
# by `benchstat old.txt new.txt` compares any later run against this
# baseline — alongside parsed per-benchmark entries and the derived
# kernel-vs-probe speedup per configuration.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=200x COUNT=1 scripts/bench.sh   # knobs pass through

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr4.json}"
benchtime="${BENCHTIME:-200x}"
count="${COUNT:-1}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run xxx -bench 'BenchmarkRevise|BenchmarkFastACKernels' \
	-benchtime "$benchtime" -count "$count" ./internal/consistency | tee "$tmp"

awk -v benchtime="$benchtime" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); gsub(/\t/, "\\t", s); return s }
{ raw = raw $0 "\\n" }
$1 == "goos:"   { goos = $2 }
$1 == "goarch:" { goarch = $2 }
$1 == "cpu:"    { cpu = $0; sub(/^cpu: */, "", cpu) }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
	n++
	names[n] = $1; sub(/-[0-9]+$/, "", names[n]) # strip GOMAXPROCS suffix
	iters[n] = $2
	nsop[n] = $3
}
END {
	printf "{\n"
	printf "  \"suite\": \"BENCH_pr4 revise kernels\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"goos\": \"%s\", \"goarch\": \"%s\",\n", goos, goarch
	printf "  \"cpu\": \"%s\",\n", jesc(cpu)
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++)
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
			jesc(names[i]), iters[i], nsop[i], i < n ? "," : ""
	printf "  ],\n"
	printf "  \"speedups_kernel_vs_probe\": [\n"
	m = 0
	for (i = 1; i <= n; i++) {
		if (names[i] !~ /\/probe$/) continue
		base = names[i]; sub(/\/probe$/, "", base)
		for (j = 1; j <= n; j++)
			if (names[j] == base "/kernel")
				pairs[++m] = sprintf("    {\"config\": \"%s\", \"probe_ns\": %s, \"kernel_ns\": %s, \"speedup\": %.2f}", \
					jesc(base), nsop[i], nsop[j], nsop[i] / nsop[j])
	}
	for (i = 1; i <= m; i++) printf "%s%s\n", pairs[i], i < m ? "," : ""
	printf "  ],\n"
	printf "  \"raw\": \"%s\"\n", jesc(raw)
	printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
