#!/usr/bin/env bash
# docscheck.sh — lint the documentation tree so it cannot silently rot.
#
# Two checks, both hard CI failures:
#
#  1. Links resolve. Every relative markdown link in README.md and
#     docs/*.md must point at a file or directory that exists in the
#     repo (anchors are stripped; absolute http(s) URLs and
#     repo-external ../ paths like the CI badge are skipped — we lint
#     what we can verify offline).
#
#  2. Flags are documented. Every flag registered by cmd/cqserve,
#     cmd/cqload, and cmd/cqeval (any flag.X / fs.X registration,
#     including fs.Var) must appear in docs/operations.md as `-name`.
#     Add a flag without a docs row and this fails; the reverse —
#     documenting a flag that no longer exists — fails too, so removed
#     flags cannot linger in the table.
#
# Exit status: 0 clean, 1 lint failure, 2 usage/IO error.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative links -------------------------------------------------
for doc in README.md docs/*.md; do
	[ -f "$doc" ] || continue
	dir="$(dirname "$doc")"
	# Markdown inline links: [text](target). One per line via grep -o.
	while IFS= read -r target; do
		case "$target" in
		*://* | '#'* | ../*) continue ;; # external, same-page anchor, repo-external
		esac
		path="${target%%#*}" # strip anchor
		[ -n "$path" ] || continue
		if [ ! -e "$dir/$path" ]; then
			echo "FAIL $doc: broken link -> $target" >&2
			fail=1
		fi
	done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

# ---- 2. flag coverage --------------------------------------------------
opsdoc=docs/operations.md
if [ ! -f "$opsdoc" ]; then
	echo "docscheck: missing $opsdoc" >&2
	exit 2
fi

# Flags a command registers: flag.String("name", ...) / fs.Bool("name", ...)
# and fs.Var(&v, "name", ...). Emits one name per line.
registered_flags() {
	grep -ho '\(flag\|fs\)\.\(String\|Int\|Int64\|Bool\|Duration\|Float64\|Uint\|Uint64\)("[^"]*"' "$1"/*.go |
		sed 's/.*("\([^"]*\)".*/\1/'
	grep -ho '\(flag\|fs\)\.Var([^,]*, *"[^"]*"' "$1"/*.go |
		sed 's/.*, *"\([^"]*\)".*/\1/'
}

# Flags the operations doc claims: backquoted `-name` table cells.
documented_flags() {
	grep -o '`-[a-z][a-z0-9-]*`' "$opsdoc" | sed 's/`-\(.*\)`/\1/' | sort -u
}

doced="$(documented_flags)"
for cmd in cmd/cqserve cmd/cqload cmd/cqeval; do
	while IFS= read -r name; do
		if ! grep -qx "$name" <<<"$doced"; then
			echo "FAIL $cmd: flag -$name not documented in $opsdoc" >&2
			fail=1
		fi
	done < <(registered_flags "$cmd" | sort -u)
done

# Reverse direction: every documented flag must still be registered
# somewhere (any of the three commands — names like -max-inflight are
# intentionally shared between cqserve and cqload's -self server).
allflags="$( (registered_flags cmd/cqserve; registered_flags cmd/cqload; registered_flags cmd/cqeval) | sort -u)"
while IFS= read -r name; do
	[ -n "$name" ] || continue
	if ! grep -qx "$name" <<<"$allflags"; then
		echo "FAIL $opsdoc: documents flag -$name, which no command registers" >&2
		fail=1
	fi
done <<<"$doced"

if [ "$fail" -ne 0 ]; then
	echo "docscheck: documentation lint failed" >&2
	exit 1
fi
echo "docscheck: links resolve, all flags documented"
