package cqtrees

import (
	"errors"
	"testing"
)

// FuzzCursorDecode: hostile cursor tokens must never panic — every input
// either decodes to a shape-valid cursor or fails wrapping
// ErrCursorMalformed — and valid decodes must re-encode to the identical
// token (the format has no redundant encodings).
func FuzzCursorDecode(f *testing.F) {
	f.Add("")
	f.Add("AQ")
	f.Add("!!!not base64!!!")
	// A genuine token, to seed structure-aware mutation.
	f.Add(encodeCursor(cursor{qhash: 0xdeadbeef, version: 42, dirs: []Dir{Asc, Desc}, ranks: []int32{7, 3}}))
	// Arity 255 with no payload: exercises the truncation checks.
	f.Add(encodeCursor(cursor{dirs: make([]Dir, 255), ranks: make([]int32, 255)})[:20])
	f.Fuzz(func(t *testing.T, token string) {
		c, err := decodeCursor(token)
		if err != nil {
			if !errors.Is(err, ErrCursorMalformed) {
				t.Fatalf("decode error %v does not wrap ErrCursorMalformed", err)
			}
			return
		}
		if len(c.dirs) != len(c.ranks) {
			t.Fatalf("decoded dirs/ranks length mismatch: %d vs %d", len(c.dirs), len(c.ranks))
		}
		if re := encodeCursor(c); re != token {
			t.Fatalf("re-encode drift: %q -> %q", token, re)
		}
	})
}
