package cqtrees

import (
	"repro/internal/core"
)

// Document is a tree paired with every tree-derived index evaluation
// needs, built exactly once by Index and shared by all evaluation
// strategies: the sibling and (preEnd, pre) orderings behind the FastAC
// support tests, the full-node-set words, and the per-label candidate
// bitsets. It is the data-side counterpart of a PreparedQuery — the
// paper's cost model splits query-only from per-tree work, and the API
// mirrors it symmetrically:
//
//	prepare the query:    pq := cqtrees.MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
//	prepare the document: doc := cqtrees.Index(t)
//	execute:              for v := range pq.NodeSeq(doc) { ... }
//
// A Document is immutable and safe for concurrent use: a server indexes
// each document once and evaluates any number of prepared queries against
// it from any number of goroutines. The legacy *Tree methods
// (Bool/All/Nodes/ForEach*) remain available and resolve trees through a
// weak per-engine document cache, so they keep working unchanged — but
// each PreparedQuery prepared standalone then maintains its own cache,
// paying the indexing cost once per query rather than once per document.
// Index is how to pay it exactly once.
type Document = core.Document

// Index builds the Document for t: every tree-derived structure is
// computed once, up front. The tree must not be mutated afterwards
// (Tree is immutable by contract after construction).
func Index(t *Tree) *Document { return core.NewDocument(t) }

// ErrNotMonadic is reported when a monadic entry point is used on a query
// whose head is not unary: NodesErr returns it (wrapped — match with
// errors.Is), and NodeSeq panics with such a wrapped error. The legacy
// Nodes/ForEachNode methods keep their original panic contract.
var ErrNotMonadic = core.ErrNotMonadic
