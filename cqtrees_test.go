package cqtrees

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	tr := MustParseTree("A(B,C(B))")
	q := MustParseQuery("Q(y) <- A(x), Child+(x, y), B(y)")
	got := EvaluateAll(tr, q)
	if len(got) != 2 {
		t.Fatalf("want 2 answers, got %v", got)
	}
	if !Evaluate(tr, q) {
		t.Errorf("Boolean evaluation should hold")
	}
	nodes := EvaluateNodes(tr, q)
	if len(nodes) != 2 {
		t.Errorf("EvaluateNodes: %v", nodes)
	}
}

func TestClassifyFacade(t *testing.T) {
	c := Classify([]Axis{Child, Following})
	if c.Complexity.String() != "NP-hard" {
		t.Errorf("Classify({Child,Following}) = %v", c)
	}
	c2 := ClassifyQuery(MustParseQuery("Q() <- Child+(x, y), Child*(y, z)"))
	if c2.Complexity.String() != "in P" {
		t.Errorf("ClassifyQuery = %v", c2)
	}
	if !strings.Contains(TableI(), "NP-hard") {
		t.Errorf("TableI output missing entries")
	}
}

func TestPlanForFacade(t *testing.T) {
	p := PlanFor(MustParseQuery("Q() <- A(x), Child(x, y)"))
	if !strings.Contains(p.String(), "acyclic") {
		t.Errorf("plan = %s", p)
	}
}

func TestToAPQAndXPathFacade(t *testing.T) {
	q := MustParseQuery("Q(z) <- S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z)")
	apq, err := ToAPQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !apq.IsAcyclic() {
		t.Errorf("APQ should be acyclic")
	}
	exprs, err := ToXPath(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) == 0 {
		t.Fatalf("no XPath expressions")
	}
	// Union of XPath answers equals the CQ answers on a sample tree.
	tr := MustParseTree("S(NP(DT),VP(VB,PP(IN)),PP(IN))")
	want := map[NodeID]bool{}
	for _, v := range EvaluateNodes(tr, q) {
		want[v] = true
	}
	got := map[NodeID]bool{}
	for _, e := range exprs {
		for _, v := range EvaluateXPath(tr, e) {
			got[v] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("XPath union %v, CQ %v", got, want)
	}
}

func TestParseXMLFacade(t *testing.T) {
	tr, err := ParseXML(strings.NewReader("<a><b/><c><b/></c></a>"))
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("Q(y) <- a(x), Child+(x, y), b(y)")
	if n := len(EvaluateNodes(tr, q)); n != 2 {
		t.Errorf("want 2 b-descendants, got %d", n)
	}
}

func TestXPathFacade(t *testing.T) {
	tr := MustParseTree("A(B(D),C)")
	e, err := ParseXPath("//B/child::D")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(EvaluateXPath(tr, e)); n != 1 {
		t.Errorf("want 1 D node, got %d", n)
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewTreeBuilder(3)
	root := b.AddNode(NilNode, "A")
	b.AddNode(root, "B")
	tr := b.Build()
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}
