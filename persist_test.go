package cqtrees

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/snapshot"
	"repro/internal/tree"
)

// randomDoc builds a deterministic random document for snapshot tests.
func randomDoc(seed int64, nodes int) *Document {
	rng := rand.New(rand.NewSource(seed))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: nodes, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	return Index(tr)
}

// TestSnapshotRoundTrip: encode -> decode -> encode is byte-identical and
// the loaded document answers queries exactly like the original, across
// tree sizes including the one-node edge.
func TestSnapshotRoundTrip(t *testing.T) {
	pq := MustCompile("Q(x, y) <- A(x), Child(x, y)")
	for _, n := range []int{1, 2, 7, 100, 1000} {
		doc := randomDoc(int64(n), n)
		data := doc.Snapshot()
		loaded, err := LoadDocument(data)
		if err != nil {
			t.Fatalf("n=%d: LoadDocument: %v", n, err)
		}
		if loaded.Len() != n {
			t.Fatalf("n=%d: loaded %d nodes", n, loaded.Len())
		}
		if !bytes.Equal(data, loaded.Snapshot()) {
			t.Fatalf("n=%d: re-encode is not byte-identical", n)
		}
		want, err := pq.AllErr(doc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pq.AllErr(loaded)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: answers differ after round trip", n)
		}
	}
}

// TestSnapshotWriteToFile: the io.WriterTo / file helpers round-trip and
// the file path hits the zero-copy load (on little-endian hosts the
// aligned ReadFile buffer makes every table a view, not a copy).
func TestSnapshotWriteToFile(t *testing.T) {
	doc := randomDoc(7, 300)
	path := filepath.Join(t.TempDir(), "doc.cqs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDocumentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc.Snapshot(), loaded.Snapshot()) {
		t.Fatal("file round trip is not byte-identical")
	}
	path2 := filepath.Join(t.TempDir(), "doc2.cqs")
	if err := SaveDocumentFile(path2, doc); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("WriteTo and SaveDocumentFile disagree")
	}
}

// TestSnapshotLoadedParity: all three evaluation strategies agree between
// a freshly indexed document and its snapshot-loaded twin, concurrently
// (run with -race), and the load itself performs no hidden index build —
// IndexBuildCount stays put while IndexLoadCount ticks.
func TestSnapshotLoadedParity(t *testing.T) {
	doc := randomDoc(42, 400)
	data := doc.Snapshot()

	builds, loads := consistency.IndexBuildCount(), consistency.IndexLoadCount()
	loaded, err := LoadDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := consistency.IndexBuildCount() - builds; d != 0 {
		t.Fatalf("LoadDocument performed %d index builds, want 0", d)
	}
	if d := consistency.IndexLoadCount() - loads; d != 1 {
		t.Fatalf("LoadDocument registered %d index loads, want 1", d)
	}

	type strat struct {
		name string
		pq   *PreparedQuery
		want []NodeID
	}
	var strats []strat
	for name, src := range strategyQueries {
		pq := MustCompile(src)
		want, err := pq.NodesErr(doc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		strats = append(strats, strat{name, pq, want})
	}

	builds = consistency.IndexBuildCount()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				s := strats[(g+it)%len(strats)]
				got, err := s.pq.NodesErr(loaded)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", s.name, err)
					return
				}
				if !reflect.DeepEqual(got, s.want) {
					errs <- fmt.Errorf("%s: snapshot-loaded answers differ", s.name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if d := consistency.IndexBuildCount() - builds; d != 0 {
		t.Fatalf("evaluation against the loaded document triggered %d index builds, want 0", d)
	}
}

// TestSnapshotTypedErrors: every malformed input class maps to its
// sentinel, and none of them panic.
func TestSnapshotTypedErrors(t *testing.T) {
	data := randomDoc(3, 50).Snapshot()

	check := func(name string, input []byte, want error) {
		t.Helper()
		_, err := LoadDocument(input)
		if !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("empty", nil, ErrSnapshotTruncated)
	check("short", data[:10], ErrSnapshotTruncated)

	badMagic := append([]byte(nil), data...)
	badMagic[0] = 'X'
	check("magic", badMagic, ErrSnapshotBadMagic)

	// Version precedes the checksum in validation order, so a bumped
	// version byte reports ErrVersion even though the checksum is stale.
	badVersion := append([]byte(nil), data...)
	badVersion[4] = 99
	check("version", badVersion, ErrSnapshotVersion)

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	check("bitflip", flipped, ErrSnapshotChecksum)

	check("truncated tail", data[:len(data)-16], ErrSnapshotChecksum)

	// A checksum-valid container missing the document sections is corrupt.
	w := snapshot.NewWriter()
	w.WriteMeta(snapshot.Meta{Nodes: 3, Labels: 1, Structure: 3})
	check("missing sections", w.Finish(), ErrSnapshotCorrupt)
}

// TestSnapshotGolden pins the v1 on-disk bytes: the committed fixture
// must decode, answer queries, and re-encode byte-for-byte. Any format
// change breaks this test — that is the point; bump snapshot.Version and
// regenerate with UPDATE_GOLDEN=1 go test -run TestSnapshotGolden .
func TestSnapshotGolden(t *testing.T) {
	const goldenPath = "testdata/golden_v1.cqs"
	// The fixture document: fixed term, every strategy exercisable.
	tr := MustParseTree("A(B(C,B),C(B(A),C),B)")
	doc := Index(tr)
	data := doc.Snapshot()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(data))
	}

	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(golden, data) {
		t.Fatalf("encoding of the fixture document changed (%d vs %d bytes): bump snapshot.Version and regenerate the fixture",
			len(data), len(golden))
	}
	loaded, err := LoadDocument(golden)
	if err != nil {
		t.Fatalf("golden fixture does not decode: %v", err)
	}
	if !bytes.Equal(loaded.Snapshot(), golden) {
		t.Fatal("golden fixture does not re-encode byte-exactly")
	}
	for name, src := range strategyQueries {
		pq := MustCompile(src)
		want, err := pq.NodesErr(doc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pq.NodesErr(loaded)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: golden-loaded answers differ", name)
		}
	}
}

// TestCorpusAccountingInvariant pins the byte-accounting fix: after any
// query mix — including labels the documents do not contain — the
// corpus's accounted total still equals the sum of the documents' actual
// footprints, because Add materializes every lazy structure before
// charging and unknown labels resolve to one shared (already-charged)
// empty set.
func TestCorpusAccountingInvariant(t *testing.T) {
	c := NewCorpus()
	docs := map[string]*Document{}
	for i, name := range []string{"a", "b", "c"} {
		doc := randomDoc(int64(i), 120+30*i)
		if err := c.Add(name, doc); err != nil {
			t.Fatal(err)
		}
		docs[name] = doc
	}
	sum := func() int64 {
		var s int64
		for _, d := range docs {
			s += d.SizeBytes()
		}
		return s
	}
	if got, want := c.Bytes(), sum(); got != want {
		t.Fatalf("after insertion: Bytes = %d, actual = %d", got, want)
	}
	// Label-heavy mix: known labels, and a stream of distinct unknown ones.
	for i := 0; i < 50; i++ {
		src := fmt.Sprintf("Q(x) <- Label%d(x)", i)
		for range c.Nodes(MustCompile(src)) {
		}
	}
	for _, src := range strategyQueries {
		for range c.Nodes(MustCompile(src)) {
		}
	}
	if got, want := c.Bytes(), sum(); got != want {
		t.Fatalf("after queries: Bytes = %d, actual = %d — accounting drifted", got, want)
	}
}

// TestCorpusPersistRestart drives the full persistence cycle: persist a
// corpus to a directory, open a fresh corpus over it, and check that
// entries register dehydrated (header read only), hydrate on first use
// with zero index builds, and answer queries identically.
func TestCorpusPersistRestart(t *testing.T) {
	dir := t.TempDir()
	pq := MustCompile(strategyQueries["xproperty"])

	c1 := NewCorpus()
	want := map[string][]NodeID{}
	for i, name := range []string{"alpha", "beta", "with/slash and space"} {
		doc := randomDoc(int64(100+i), 200)
		if err := c1.Add(name, doc); err != nil {
			t.Fatal(err)
		}
		nodes, err := pq.NodesErr(doc)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = nodes
	}
	if n, err := c1.PersistDir(dir); err != nil || n != 3 {
		t.Fatalf("PersistDir = %d, %v", n, err)
	}

	c2 := NewCorpus()
	builds := consistency.IndexBuildCount()
	if n, err := c2.LoadDir(dir); err != nil || n != 3 {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	if got := c2.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta", "with/slash and space"}) {
		t.Fatalf("Names = %v", got)
	}
	if c2.Bytes() != 0 {
		t.Fatalf("dehydrated corpus charges %d bytes, want 0", c2.Bytes())
	}
	for name := range want {
		st, ok := c2.Stat(name)
		if !ok || st.Hydrated || st.Nodes != 200 || st.Bytes != 0 {
			t.Fatalf("Stat(%s) = %+v, %v", name, st, ok)
		}
	}
	// Hydrate via batch evaluation; answers must match the originals.
	got := map[string][]NodeID{}
	for r := range c2.Nodes(pq) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Doc, r.Err)
		}
		got[r.Doc] = r.Nodes
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("answers differ after persist + restart")
	}
	if d := consistency.IndexBuildCount() - builds; d != 0 {
		t.Fatalf("restart hydration performed %d index builds, want 0", d)
	}
	for name := range want {
		st, _ := c2.Stat(name)
		if !st.Hydrated || st.Bytes <= 0 {
			t.Fatalf("Stat(%s) after use = %+v, want hydrated", name, st)
		}
	}
	if c2.Bytes() <= 0 {
		t.Fatal("hydrated corpus charges no bytes")
	}
}

// TestCorpusDehydration: under a byte budget, snapshot-backed documents
// dehydrate back to stubs instead of vanishing — every name keeps
// serving, with at most budget bytes resident at any time.
func TestCorpusDehydration(t *testing.T) {
	dir := t.TempDir()
	seed := NewCorpus()
	for i, name := range []string{"a", "b", "c", "d"} {
		if err := seed.Add(name, randomDoc(int64(i), 150)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := seed.PersistDir(dir); err != nil {
		t.Fatal(err)
	}
	unit := seed.Bytes() / 4

	var dehydrated []string
	c := NewCorpus(
		WithMaxBytes(2*unit+unit/2),
		WithEvictionHook(func(name string, doc *Document) { dehydrated = append(dehydrated, name) }),
	)
	if n, err := c.LoadDir(dir); err != nil || n != 4 {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	pq := MustCompile(strategyQueries["acyclic"])
	// Touch every document several times; the working set (4 docs) exceeds
	// the budget (2.5 docs), so hydrations must dehydrate colder entries.
	for round := 0; round < 3; round++ {
		for _, name := range []string{"a", "b", "c", "d"} {
			doc, ok := c.Get(name)
			if !ok {
				t.Fatalf("round %d: Get(%s) failed", round, name)
			}
			if _, err := pq.NodesErr(doc); err != nil {
				t.Fatal(err)
			}
			if c.Bytes() > 2*unit+unit/2 {
				t.Fatalf("round %d: resident %d bytes over budget", round, c.Bytes())
			}
		}
	}
	if len(dehydrated) == 0 {
		t.Fatal("no dehydrations despite working set exceeding the budget")
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 — dehydration must keep names", got)
	}
	// Unpersist removes file and entry for dehydrated docs, detaches
	// resident ones.
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := c.Unpersist(dir, name); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got >= 4 {
		t.Fatalf("Len = %d after Unpersist of all, want fewer (stubs removed)", got)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("%d files left in dir after Unpersist", len(des))
	}
}

// FuzzLoadDocument: the decoder must return a typed error or a working
// document on any input — no panics, no unbounded allocation (payload
// lengths are validated against the input before use).
func FuzzLoadDocument(f *testing.F) {
	valid := randomDoc(11, 60).Snapshot()
	f.Add(valid)
	f.Add(valid[:len(valid)-9])
	f.Add(valid[:16])
	f.Add([]byte{})
	f.Add([]byte("CQSN"))
	tiny := Index(MustParseTree("A(B)")).Snapshot()
	f.Add(tiny)
	mut := append([]byte(nil), tiny...)
	mut[20] ^= 0xff
	f.Add(mut)
	// Truncated mid-section: the header parses, a payload table does not.
	f.Add(valid[:48+(len(valid)-48)/2])
	// Flipped CRC trailer: every byte of payload intact, checksum wrong.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(crcFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := LoadDocument(data)
		if err != nil {
			for _, sentinel := range []error{
				ErrSnapshotTruncated, ErrSnapshotBadMagic, ErrSnapshotVersion,
				ErrSnapshotChecksum, ErrSnapshotCorrupt,
			} {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// A successful decode must yield a usable document: size accounting
		// and eager materialization walk every adopted table.
		_ = doc.Len()
		doc.Materialize()
		_ = doc.SizeBytes()
	})
}

// FuzzCorpusHydration drives arbitrary bytes through the corpus's lazy
// hydration path: the bytes land on disk as a snapshot file, LoadDir
// registers (or rejects) it from the header alone, and Get forces the
// full read. Whatever the bytes, the corpus must either serve a working
// document or return a typed persistence error — never panic — and a
// file it calls quarantined must actually be at its quarantine name.
func FuzzCorpusHydration(f *testing.F) {
	valid := Index(MustParseTree("A(B,C(D))")).Snapshot()
	f.Add(valid)
	f.Add(valid[:len(valid)-9])
	f.Add(valid[:48+(len(valid)-48)/2]) // truncated mid-section
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x01 // payload intact, checksum wrong
	f.Add(crcFlip)
	headerFlip := append([]byte(nil), valid...)
	headerFlip[30] ^= 0xff // header damage: caught at registration
	f.Add(headerFlip)
	f.Add([]byte{})
	f.Add([]byte("CQSN"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "doc.cqs")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c := NewCorpus()
		// Registration may reject the file outright (bad header —
		// quarantined during the scan) or register a stub whose corruption
		// only surfaces on hydration; both are fine, panics are not.
		_, _ = c.LoadDirReport(dir)
		doc, err := c.GetErr("doc")
		switch {
		case err == nil:
			doc.Materialize()
			_ = doc.SizeBytes()
		case errors.Is(err, ErrDocumentQuarantined):
			if _, serr := os.Stat(path + ".corrupt"); serr != nil {
				t.Fatalf("quarantined but no quarantine file: %v", serr)
			}
		case errors.Is(err, ErrUnknownDocument), errors.Is(err, ErrDocumentUnavailable):
			// Rejected at registration, or a transient read failure.
		default:
			t.Fatalf("untyped hydration error: %v", err)
		}
	})
}

// TestCorpusPersistenceOptions drives the public option and health-counter
// surface end to end: fsync-free persistence, a custom retry policy, the
// invalidation hook, Peek/Version/Hydrations, and the typed quarantine
// error both from GetErr and from a batch WithDocs row.
func TestCorpusPersistenceOptions(t *testing.T) {
	dir := t.TempDir()
	var invalidated []string
	c := NewCorpus(
		WithNoFsync(),
		WithRetryPolicy(time.Millisecond, 10*time.Millisecond),
		WithInvalidationHook(func(name string) { invalidated = append(invalidated, name) }),
	)
	doc, err := c.AddTree("d", MustParseTree("A(B,C)"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PersistDoc(dir, "d"); err != nil {
		t.Fatal(err)
	}
	got, size, ok := c.Peek("d")
	if !ok || got != doc || size <= 0 {
		t.Fatalf("Peek = %v, %d, %v", got, size, ok)
	}
	v1, ok := c.Version("d")
	if !ok || v1 == 0 {
		t.Fatalf("Version = %d, %v", v1, ok)
	}
	if _, err := c.Swap("d", Index(MustParseTree("A(B,C,D)"))); err != nil {
		t.Fatal(err)
	}
	if v2, _ := c.Version("d"); v2 <= v1 {
		t.Fatalf("version after Swap = %d, want > %d", v2, v1)
	}
	if len(invalidated) != 1 || invalidated[0] != "d" {
		t.Fatalf("invalidation hook calls = %v, want [d]", invalidated)
	}

	// Fresh corpus over the directory: a stub until first use.
	c2 := NewCorpus()
	if _, err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if c2.Hydrations() != 0 {
		t.Fatalf("hydrations before use = %d", c2.Hydrations())
	}
	if _, err := c2.GetErr("d"); err != nil {
		t.Fatal(err)
	}
	if c2.Hydrations() != 1 {
		t.Fatalf("hydrations after use = %d", c2.Hydrations())
	}
	if _, err := c2.GetErr("ghost"); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("GetErr(ghost) = %v", err)
	}

	// Corrupt the snapshot body and restart once more: the stub
	// quarantines on first use and the counters say so.
	path := filepath.Join(dir, "d.cqs")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-5] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := NewCorpus()
	if _, err := c3.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.GetErr("d"); !errors.Is(err, ErrDocumentQuarantined) {
		t.Fatalf("GetErr on corrupt = %v", err)
	}
	ps := c3.Persistence()
	if ps.Quarantines != 1 || ps.Quarantined != 1 || ps.HydrationErrors != 1 {
		t.Fatalf("Persistence() = %+v", ps)
	}

	// A batch pinned to the quarantined doc reports the typed hydration
	// error on its result row, not an unknown-document error.
	q := MustCompile("Q() <- A(x)")
	for r := range c3.Bool(q, WithDocs("d")) {
		if !errors.Is(r.Err, ErrDocumentQuarantined) {
			t.Fatalf("batch row err = %v, want quarantined", r.Err)
		}
	}
}

// TestIndexCounters pins the "no hidden rebuilds" observability contract:
// indexing moves the build counter, snapshot loading moves the load one.
func TestIndexCounters(t *testing.T) {
	builds, loads := IndexBuildCount(), IndexLoadCount()
	doc := Index(MustParseTree("A(B)"))
	if got := IndexBuildCount(); got != builds+1 {
		t.Fatalf("IndexBuildCount after Index: %d, want %d", got, builds+1)
	}
	if _, err := LoadDocument(doc.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := IndexLoadCount(); got != loads+1 {
		t.Fatalf("IndexLoadCount after LoadDocument: %d, want %d", got, loads+1)
	}
	if got := IndexBuildCount(); got != builds+1 {
		t.Fatalf("LoadDocument must not rebuild: builds %d -> %d", builds+1, got)
	}
}
