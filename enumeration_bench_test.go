package cqtrees

// BenchmarkEnumeration: output-sensitive answer enumeration. The workload
// controls the answer-set size independently of the tree size — the paper's
// bound below Theorem 3.5 is O(|A|^k · ‖A‖ · |Q|) (candidate-space
// sensitive), while the streaming enumerator's cost should track the answer
// count: one shared arc-consistency pass plus an incremental pinned check
// per candidate.
//
// Variants:
//
//	pertuple-AC   the seed polyAll cost model — one FastAC pass, then a
//	              from-scratch pinned arc-consistency run per candidate
//	              (PolyEngine.CheckTuple), rebuilding domain indexes each
//	              time.
//	stream        PreparedQuery.ForEachNode (incremental pinned checks
//	              seeded from the shared maximal prevaluation).
//	materialize   PreparedQuery.Nodes.
//	parallel4     PreparedQuery.WithParallelism(4).Nodes.
//	first-answer  ForEachNode with an immediate stop — the early-exit
//	              price of an existence-style query.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/tree"
)

// enumBenchTree builds a random-shape tree with exactly `answers` answer
// nodes for enumBenchQuery: the root is labeled A, `answers` distinct
// non-root nodes are labeled B and given a C-labeled child.
func enumBenchTree(rng *rand.Rand, n, answers int) *Tree {
	b := tree.NewBuilder(n + answers)
	nodes := make([]NodeID, 0, n)
	nodes = append(nodes, b.AddNode(tree.NilNode, "A"))
	for i := 1; i < n; i++ {
		nodes = append(nodes, b.AddNode(nodes[rng.Intn(len(nodes))], "D"))
	}
	for _, pi := range rng.Perm(n - 1)[:answers] {
		v := nodes[1+pi]
		b.AddLabel(v, "B")
		b.AddNode(v, "C")
	}
	return b.Build()
}

// enumBenchQuery is monadic and cyclic (triangle x-y-z) over {Child+}, so
// it evaluates under the X-property strategy: answers are the B-labeled
// nodes with a C-labeled descendant and a proper A-labeled ancestor.
const enumBenchQuery = "Q(y) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)"

func BenchmarkEnumeration(b *testing.B) {
	for _, cfg := range []struct{ n, answers int }{
		{2000, 4},
		{8000, 4},
		{8000, 64},
		{8000, 1024},
	} {
		rng := rand.New(rand.NewSource(int64(cfg.n + cfg.answers)))
		tr := enumBenchTree(rng, cfg.n, cfg.answers)
		q := MustParseQuery(enumBenchQuery)
		pq := MustPrepare(q)
		if pq.Plan().Strategy != core.StrategyXProperty {
			b.Fatalf("benchmark query must hit the X-property strategy, got %v", pq.Plan())
		}
		if got := len(pq.Nodes(tr)); got != cfg.answers {
			b.Fatalf("planted %d answers, query found %d", cfg.answers, got)
		}
		name := fmt.Sprintf("n=%d/answers=%d", cfg.n, cfg.answers)

		b.Run(name+"/pertuple-AC", func(b *testing.B) {
			eng, err := core.NewPolyEngineFor(q)
			if err != nil {
				b.Fatal(err)
			}
			y := q.Head[0]
			for i := 0; i < b.N; i++ {
				p, ok := consistency.FastAC(tr, q)
				if !ok {
					b.Fatal("unsatisfiable")
				}
				count := 0
				p.Sets[y].ForEach(func(v NodeID) bool {
					if eng.CheckTuple(tr, q, []NodeID{v}) {
						count++
					}
					return true
				})
				if count != cfg.answers {
					b.Fatalf("count = %d", count)
				}
			}
		})
		b.Run(name+"/stream", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				pq.ForEachNode(tr, func(NodeID) bool {
					count++
					return true
				})
				if count != cfg.answers {
					b.Fatalf("count = %d", count)
				}
			}
		})
		b.Run(name+"/materialize", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := pq.Nodes(tr); len(got) != cfg.answers {
					b.Fatalf("count = %d", len(got))
				}
			}
		})
		b.Run(name+"/parallel4", func(b *testing.B) {
			par := pq.WithParallelism(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := par.Nodes(tr); len(got) != cfg.answers {
					b.Fatalf("count = %d", len(got))
				}
			}
		})
		b.Run(name+"/first-answer", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				found := false
				pq.ForEachNode(tr, func(NodeID) bool {
					found = true
					return false
				})
				if !found {
					b.Fatal("no answer")
				}
			}
		})
	}

	// A binary-head slice of the same workload: prefix pruning must keep
	// k-ary enumeration near the answer count as well.
	rng := rand.New(rand.NewSource(99))
	tr := enumBenchTree(rng, 4000, 16)
	q := MustParseQuery("Q(y, z) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)")
	pq := MustPrepare(q)
	want := len(pq.All(tr))
	b.Run("pair/n=4000/stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			pq.ForEachTuple(tr, func([]NodeID) bool {
				count++
				return true
			})
			if count != want {
				b.Fatalf("count = %d, want %d", count, want)
			}
		}
	})
	b.Run("pair/n=4000/parallel4", func(b *testing.B) {
		par := pq.WithParallelism(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := par.All(tr); len(got) != want {
				b.Fatalf("count = %d, want %d", len(got), want)
			}
		}
	})
}
