package cqtrees

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Pagination cursors. A cursor is a compact, versioned, opaque token
// binding a resume position to the query, the order, and the document
// content it was produced against:
//
//	version byte | arity | per-position direction | fnv64a(query
//	fingerprint) | document version (uvarint) | per-position pre rank
//	(uvarint)
//
// base64url-encoded (no padding). The pre ranks are the document-order
// ranks of the last delivered tuple's head nodes — exactly the pin prefix
// the ordered descent re-seeks to, so a resume costs O(depth + page), not
// O(answers skipped). Cursor stability: pre ranks are a pure function of
// the tree, and corpus versions are stable across dehydrate/hydrate (see
// Corpus.Version), so a cursor stays valid for as long as the document's
// content does — and is rejected as stale the moment it does not.
//
// See docs/pagination.md for the full semantics.

// Dir is one head position's enumeration direction for WithOrder:
// ascending or descending document (pre) order.
type Dir int8

const (
	// Asc enumerates the head position in increasing document order.
	Asc Dir = iota
	// Desc enumerates the head position in decreasing document order.
	Desc
)

// String returns "asc" or "desc" (the serving layer's wire spelling).
func (d Dir) String() string {
	if d == Desc {
		return "desc"
	}
	return "asc"
}

// ParseDir parses the wire spelling of a direction: "asc" or "desc".
func ParseDir(s string) (Dir, error) {
	switch s {
	case "asc":
		return Asc, nil
	case "desc":
		return Desc, nil
	}
	return Asc, fmt.Errorf("cqtrees: unknown direction %q (asc, desc)", s)
}

// Cursor-tier errors. All are returned wrapped (match with errors.Is);
// none of the decode or pagination paths panic on hostile tokens.
var (
	// ErrCursorMalformed is returned for tokens that do not decode:
	// invalid base64, truncated or oversized payloads, unknown versions.
	ErrCursorMalformed = errors.New("malformed cursor")
	// ErrCursorMismatch is returned for well-formed cursors minted by a
	// different query (fingerprint hash differs), a different arity, or
	// under a different order than the request's.
	ErrCursorMismatch = errors.New("cursor does not match query or order")
	// ErrCursorStale is returned when the cursor's document version
	// differs from the evaluated document's (see WithDocVersion and
	// Corpus.Page): the document changed, so resume positions are void.
	ErrCursorStale = errors.New("cursor is stale: document changed")
	// ErrOrderArity is returned when a WithOrder spec has more directions
	// than the query has head variables (shorter specs pad ascending).
	ErrOrderArity = errors.New("order spec longer than query arity")
)

// cursorVersion is the token format version byte.
const cursorVersion = 1

// cursorMaxArity bounds the decoded arity (queries cannot have more head
// positions than variables, and hostile tokens must not size allocations).
const cursorMaxArity = 255

// cursor is the decoded resume token.
type cursor struct {
	qhash   uint64 // fnv64a of the compiled query's fingerprint
	version uint64 // document content version the token was minted against
	dirs    []Dir  // per-head-position direction
	ranks   []int32
}

// fingerprintHash hashes a query fingerprint into the cursor's query tag.
func fingerprintHash(fp string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(fp))
	return h.Sum64()
}

// encodeCursor renders the token.
func encodeCursor(c cursor) string {
	buf := make([]byte, 0, 2+len(c.dirs)+8+binary.MaxVarintLen64*(1+len(c.ranks)))
	buf = append(buf, cursorVersion, byte(len(c.dirs)))
	for _, d := range c.dirs {
		buf = append(buf, byte(d))
	}
	buf = binary.BigEndian.AppendUint64(buf, c.qhash)
	buf = binary.AppendUvarint(buf, c.version)
	for _, r := range c.ranks {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return base64.RawURLEncoding.EncodeToString(buf)
}

// decodeCursor parses and validates a token's shape (not its bindings:
// query, order, and version checks happen against the evaluation's
// context). Any malformed input — invalid base64, short or trailing
// bytes, unknown version, out-of-range ranks — returns an error wrapping
// ErrCursorMalformed; decode never panics.
func decodeCursor(token string) (cursor, error) {
	fail := func(why string) (cursor, error) {
		return cursor{}, fmt.Errorf("cqtrees: %s: %w", why, ErrCursorMalformed)
	}
	// Strict: non-canonical encodings (nonzero unused trailing bits) are
	// rejected, so every shape-valid token has exactly one spelling.
	raw, err := base64.RawURLEncoding.Strict().DecodeString(token)
	if err != nil {
		return fail("cursor is not base64url")
	}
	if len(raw) < 2 {
		return fail("cursor too short")
	}
	if raw[0] != cursorVersion {
		return fail(fmt.Sprintf("unknown cursor version %d", raw[0]))
	}
	arity := int(raw[1])
	raw = raw[2:]
	if len(raw) < arity+8 {
		return fail("cursor truncated")
	}
	c := cursor{dirs: make([]Dir, arity), ranks: make([]int32, arity)}
	for i := 0; i < arity; i++ {
		switch Dir(raw[i]) {
		case Asc, Desc:
			c.dirs[i] = Dir(raw[i])
		default:
			return fail("invalid cursor direction")
		}
	}
	raw = raw[arity:]
	c.qhash = binary.BigEndian.Uint64(raw[:8])
	raw = raw[8:]
	var n int
	if c.version, n = binary.Uvarint(raw); n <= 0 {
		return fail("cursor version varint truncated")
	}
	raw = raw[n:]
	for i := 0; i < arity; i++ {
		r, n := binary.Uvarint(raw)
		if n <= 0 {
			return fail("cursor rank varint truncated")
		}
		if r > math.MaxInt32 {
			return fail("cursor rank out of range")
		}
		c.ranks[i] = int32(r)
		raw = raw[n:]
	}
	if len(raw) != 0 {
		return fail("trailing bytes after cursor payload")
	}
	return c, nil
}
