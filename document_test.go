package cqtrees

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/tree"
)

// strategyQueries covers all three evaluation strategies; each is monadic
// so every tier (Tuples, NodeSeq, AllErr, NodesErr, legacy) applies.
var strategyQueries = map[string]string{
	"acyclic":   "Q(y) <- A(x), Child+(x, y), B(y)",
	"xproperty": "Q(y) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)",
	"backtrack": "Q(y) <- A(x), Child(x, y), B(y), Child+(x, z), C(z), Following(y, z)",
}

// TestDocumentSharedAcrossGoroutines runs several PreparedQuerys over one
// shared Document from many goroutines at once; under -race this proves
// the Document (orderings, lazily materialized label bitsets, full-set
// words) is safe to share between strategies and callers.
func TestDocumentSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 150, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	doc := Index(tr)

	var pqs []*PreparedQuery
	var want [][]NodeID
	for _, name := range []string{"acyclic", "xproperty", "backtrack"} {
		pq := MustCompile(strategyQueries[name])
		nodes, err := pq.NodesErr(doc)
		if err != nil {
			t.Fatalf("%s: NodesErr: %v", name, err)
		}
		pqs = append(pqs, pq)
		want = append(want, nodes)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 15; it++ {
				i := (g + it) % len(pqs)
				got, err := pqs[i].NodesErr(doc)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("goroutine %d query %d: %v != %v", g, i, got, want[i])
					return
				}
				var seq []NodeID
				for v := range pqs[i].NodeSeq(doc) {
					seq = append(seq, v)
				}
				sortNodes(seq)
				if !reflect.DeepEqual(seq, want[i]) && !(len(seq) == 0 && len(want[i]) == 0) {
					errs <- fmt.Errorf("goroutine %d query %d: NodeSeq %v != %v", g, i, seq, want[i])
					return
				}
				if sat, err := pqs[i].BoolErr(doc); err != nil || sat != (len(want[i]) > 0) {
					errs <- fmt.Errorf("goroutine %d query %d: BoolErr = %v, %v", g, i, sat, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDocumentTierParity is the three-tier parity property test: on random
// trees and queries, the Document-based iterators (Tuples/NodeSeq), the
// error-returning tier (AllErr/NodesErr), and the legacy *Tree methods
// (All/Nodes, ForEachTuple/ForEachNode) must all agree — byte-identically
// for the materialized forms — under every strategy.
func TestDocumentTierParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	alphabet := []string{"A", "B", "C"}
	hit := map[core.Strategy]int{}
	for trial := 0; trial < 140; trial++ {
		cfg := parityConfigs[trial%len(parityConfigs)]
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes:       1 + rng.Intn(11),
			MaxChildren: 3,
			Alphabet:    alphabet,
		})
		q := randomQuery(rng, cfg.axes, 2+rng.Intn(3), 1+rng.Intn(4), alphabet)
		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", cfg.name, err)
		}
		hit[pq.Plan().Strategy]++
		doc := Index(tr)

		legacy := pq.All(tr)
		allErr, err := pq.AllErr(doc)
		if err != nil {
			t.Fatalf("%s trial %d: AllErr: %v", cfg.name, trial, err)
		}
		if !reflect.DeepEqual(allErr, legacy) {
			t.Fatalf("%s trial %d: AllErr %v != legacy All %v\nq = %s\ntree = %s",
				cfg.name, trial, allErr, legacy, q, tr)
		}
		var tuples [][]NodeID
		for tuple := range pq.Tuples(doc) {
			tuples = append(tuples, tuple) // owned copies — no copy needed
		}
		sortTuplesLex(tuples)
		if !reflect.DeepEqual(tuples, legacy) && !(len(tuples) == 0 && len(legacy) == 0) {
			t.Fatalf("%s trial %d: Tuples %v != legacy All %v\nq = %s\ntree = %s",
				cfg.name, trial, tuples, legacy, q, tr)
		}
		if streamed := collectTuples(pq, tr); !reflect.DeepEqual(streamed, tuples) &&
			!(len(streamed) == 0 && len(tuples) == 0) {
			t.Fatalf("%s trial %d: ForEachTuple %v != Tuples %v", cfg.name, trial, streamed, tuples)
		}
		sat, err := pq.BoolErr(doc)
		if err != nil || sat != pq.Bool(tr) {
			t.Fatalf("%s trial %d: BoolErr = %v, %v; legacy Bool = %v", cfg.name, trial, sat, err, pq.Bool(tr))
		}

		if len(q.Head) == 1 {
			legacyNodes := pq.Nodes(tr)
			nodesErr, err := pq.NodesErr(doc)
			if err != nil {
				t.Fatalf("%s trial %d: NodesErr: %v", cfg.name, trial, err)
			}
			if !reflect.DeepEqual(nodesErr, legacyNodes) {
				t.Fatalf("%s trial %d: NodesErr %v != legacy Nodes %v", cfg.name, trial, nodesErr, legacyNodes)
			}
			var seq, streamed []NodeID
			for v := range pq.NodeSeq(doc) {
				seq = append(seq, v)
			}
			pq.ForEachNode(tr, func(v NodeID) bool { streamed = append(streamed, v); return true })
			sortNodes(seq)
			sortNodes(streamed)
			if !reflect.DeepEqual(seq, streamed) && !(len(seq) == 0 && len(streamed) == 0) {
				t.Fatalf("%s trial %d: NodeSeq %v != ForEachNode %v", cfg.name, trial, seq, streamed)
			}
			if !reflect.DeepEqual(seq, legacyNodes) && !(len(seq) == 0 && len(legacyNodes) == 0) {
				t.Fatalf("%s trial %d: NodeSeq %v != Nodes %v", cfg.name, trial, seq, legacyNodes)
			}
		}
	}
	for _, s := range []core.Strategy{core.StrategyAcyclic, core.StrategyXProperty, core.StrategyBacktrack} {
		if hit[s] == 0 {
			t.Errorf("tier parity never exercised strategy %v", s)
		}
	}
	t.Logf("strategy coverage: %v", hit)
}

// TestIteratorEarlyExit: breaking out of a range loop must stop the
// underlying engine immediately, for every strategy.
func TestIteratorEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 150, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	doc := Index(tr)
	for name, src := range strategyQueries {
		t.Run(name, func(t *testing.T) {
			pq := MustCompile(src)
			total, err := pq.NodesErr(doc)
			if err != nil || len(total) < 2 {
				t.Fatalf("want >= 2 answers, got %v (err %v)", total, err)
			}
			count := 0
			for range pq.Tuples(doc) {
				count++
				if count == 2 {
					break
				}
			}
			if count != 2 {
				t.Errorf("Tuples early exit consumed %d, want 2", count)
			}
			count = 0
			for range pq.NodeSeq(doc) {
				count++
				if count == 1 {
					break
				}
			}
			if count != 1 {
				t.Errorf("NodeSeq early exit consumed %d, want 1", count)
			}
		})
	}
}

// TestErrNotMonadic: the error-returning tier reports a typed, wrappable
// ErrNotMonadic where the legacy tier panics.
func TestErrNotMonadic(t *testing.T) {
	tr := MustParseTree("A(B,C(B))")
	doc := Index(tr)
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	if _, err := pq.NodesErr(doc); !errors.Is(err, ErrNotMonadic) {
		t.Errorf("NodesErr on binary query: err = %v, want ErrNotMonadic", err)
	}
	func() {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrNotMonadic) {
				t.Errorf("NodeSeq panic = %v, want error wrapping ErrNotMonadic", r)
			}
		}()
		pq.NodeSeq(doc)
	}()
	// The legacy contract is preserved: Nodes still panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("legacy Nodes on binary query should panic")
			}
		}()
		pq.Nodes(tr)
	}()
	// Monadic queries are unaffected.
	mq := MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	if nodes, err := mq.NodesErr(doc); err != nil || len(nodes) != 2 {
		t.Errorf("NodesErr = %v, %v; want 2 nodes", nodes, err)
	}
}

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of Err calls — a deterministic way to cancel evaluation
// mid-flight at an exact outer-candidate iteration.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	fired bool
}

func newCountdownCtx(calls int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), left: calls}
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		c.fired = true
		return context.Canceled
	}
	c.left--
	return nil
}

// TestContextCancelSequential: a cancelled context stops sequential
// enumeration within one outer iteration, and the error-returning tier
// reports the context error (discarding partial results).
func TestContextCancelSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 300, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	doc := Index(tr)

	// Pre-cancelled context: every strategy and entry point errors upfront.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for name, src := range strategyQueries {
		pq := MustCompile(src)
		if _, err := pq.BoolErr(doc, WithContext(cancelled)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: BoolErr on cancelled ctx: err = %v", name, err)
		}
		if out, err := pq.AllErr(doc, WithContext(cancelled)); !errors.Is(err, context.Canceled) || out != nil {
			t.Errorf("%s: AllErr on cancelled ctx: out = %v, err = %v", name, out, err)
		}
		if out, err := pq.NodesErr(doc, WithContext(cancelled)); !errors.Is(err, context.Canceled) || out != nil {
			t.Errorf("%s: NodesErr on cancelled ctx: out = %v, err = %v", name, out, err)
		}
	}

	// Mid-iteration cancel: consume 3 nodes then cancel; the sequence must
	// stop before yielding a 4th (the probe runs once per outer candidate).
	for _, name := range []string{"acyclic", "xproperty"} {
		pq := MustCompile(strategyQueries[name])
		all, err := pq.NodesErr(doc)
		if err != nil || len(all) < 5 {
			t.Fatalf("%s: want >= 5 answers for a meaningful cancel test, got %v (err %v)", name, all, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		count := 0
		for range pq.NodeSeq(doc, WithContext(ctx)) {
			count++
			if count == 3 {
				cancel()
			}
		}
		cancel()
		if count != 3 {
			t.Errorf("%s: consumed %d nodes after cancelling at 3", name, count)
		}
		// The error tier must surface the cancellation.
		if _, err := pq.NodesErr(doc, WithContext(ctx)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: NodesErr after cancel: err = %v", name, err)
		}
	}

	// Backtracking checks the probe at every search-node expansion: cancel
	// after the first tuple and require the search to stop early.
	pq := MustCompile(strategyQueries["backtrack"])
	total, err := pq.NodesErr(doc)
	if err != nil || len(total) < 2 {
		t.Fatalf("backtrack: want >= 2 answers, got %v (err %v)", total, err)
	}
	ctx, cancelBT := context.WithCancel(context.Background())
	count := 0
	for range pq.Tuples(doc, WithContext(ctx)) {
		count++
		cancelBT()
	}
	cancelBT()
	if count != 1 {
		t.Errorf("backtrack: consumed %d tuples after cancelling at 1", count)
	}
}

// TestContextCancelParallel: cancellation mid-shard stops the sharded
// enumeration (the countdown context fires after the workers have started
// pulling candidates), the error tier reports it, and no worker goroutine
// leaks.
func TestContextCancelParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 400, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	doc := Index(tr)
	pq := MustCompile(strategyQueries["xproperty"])
	seqNodes, err := pq.NodesErr(doc)
	if err != nil || len(seqNodes) < 5 {
		t.Fatalf("want >= 5 answers, got %v (err %v)", seqNodes, err)
	}

	before := runtime.NumGoroutine()
	// Entry checks pass (the countdown grants the first few probes), then a
	// worker's outer-candidate probe fires mid-shard.
	for i := 0; i < 10; i++ {
		ctx := newCountdownCtx(3)
		out, err := pq.NodesErr(doc, WithWorkers(4), WithContext(ctx))
		if !errors.Is(err, context.Canceled) || out != nil {
			t.Fatalf("iteration %d: out = %v, err = %v, want discarded result + context.Canceled", i, out, err)
		}
		if !ctx.fired {
			t.Fatalf("iteration %d: countdown context never consulted mid-shard", i)
		}
		if _, err := pq.AllErr(doc, WithWorkers(4), WithContext(newCountdownCtx(3))); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: parallel AllErr: err = %v", i, err)
		}
	}
	// A real (timer-free) context cancelled concurrently must also either
	// complete exactly or error — never return a partial result.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { time.Sleep(50 * time.Microsecond); cancel2(); close(done) }()
	out, err := pq.NodesErr(doc, WithWorkers(4), WithContext(ctx2))
	<-done
	if err == nil {
		if !reflect.DeepEqual(out, seqNodes) {
			t.Errorf("uncancelled completion returned %v, want %v", out, seqNodes)
		}
	} else if out != nil {
		t.Errorf("cancelled call returned partial result %v", out)
	}
	// No goroutine leak from the sharder: the workers all exit via wg.Wait
	// before the call returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutine count %d after cancelled parallel runs, was %d before", got, before)
	}
}

// TestDocumentIndexBuiltOnce: evaluating N prepared queries against one
// Document builds the tree indexes exactly once, while the legacy
// tree-pointer path pays one build per PreparedQuery (its weak cache is
// per query when prepared standalone).
func TestDocumentIndexBuiltOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 200, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	srcs := []string{
		strategyQueries["acyclic"],
		strategyQueries["xproperty"],
		strategyQueries["backtrack"],
	}

	before := consistency.IndexBuildCount()
	doc := Index(tr)
	for _, src := range srcs {
		pq := MustCompile(src)
		if _, err := pq.NodesErr(doc); err != nil {
			t.Fatal(err)
		}
		if _, err := pq.BoolErr(doc); err != nil {
			t.Fatal(err)
		}
		for range pq.Tuples(doc) {
		}
	}
	if got := consistency.IndexBuildCount() - before; got != 1 {
		t.Errorf("document path: %d index builds for %d queries, want exactly 1", got, len(srcs))
	}

	before = consistency.IndexBuildCount()
	for _, src := range srcs {
		pq := MustCompile(src)
		_ = pq.Nodes(tr)
		_ = pq.Bool(tr)
	}
	if got := consistency.IndexBuildCount() - before; got != int64(len(srcs)) {
		t.Errorf("tree-pointer path: %d index builds for %d standalone queries, want %d",
			got, len(srcs), len(srcs))
	}
}

// TestNegativeParallelismClamped: WithParallelism and WithWorkers reject
// negative worker counts by clamping to sequential, and 0/1 are
// equivalent.
func TestNegativeParallelismClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 80, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	doc := Index(tr)
	pq := MustCompile(strategyQueries["xproperty"])
	want := pq.Nodes(tr)
	for _, workers := range []int{-7, -1, 0, 1} {
		if got := pq.WithParallelism(workers).Nodes(tr); !reflect.DeepEqual(got, want) {
			t.Errorf("WithParallelism(%d): %v != %v", workers, got, want)
		}
		if got, err := pq.NodesErr(doc, WithWorkers(workers)); err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("WithWorkers(%d): %v (err %v) != %v", workers, got, err, want)
		}
	}
}
