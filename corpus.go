package cqtrees

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Corpus is a concurrency-safe collection of named, immutable Documents
// plus batch evaluation across it — the fleet-level counterpart of the
// per-pair prepare/index/execute pipeline. A server holds one Corpus,
// indexes each distinct document once (Add/Swap), and fans prepared
// queries across all or a subset of the fleet with a bounded worker pool
// (Bool/Nodes/Tuples and their *Set variants).
//
// Ownership and concurrency contract:
//
//   - All Corpus methods are safe for concurrent use.
//   - Documents are immutable; Remove and eviction only drop the corpus's
//     reference, so an in-flight batch keeps evaluating its snapshot
//     safely even while the corpus mutates.
//   - Batch iterators are single-use and stream results in completion
//     order (submission order when the batch runs on one worker); break
//     out of the loop to cancel the remaining work — the pool always
//     joins before the iterator returns.
//
// Memory accounting is approximate (Document.SizeBytes, charged at
// insertion). With WithMaxBytes set, insertions that push the total over
// the budget evict least-recently-used documents — Get and batch
// snapshots count as uses — and report each eviction to the
// WithEvictionHook callback, outside the corpus lock. The insertion that
// triggered the pass is itself spared, so a single oversized document
// still serves.
type Corpus struct {
	c *corpus.Corpus
}

// ErrCorpusDuplicate is returned by Corpus.Add when the name is taken.
var ErrCorpusDuplicate = corpus.ErrExists

// ErrUnknownDocument is reported (wrapped, per affected result) by batch
// evaluation when WithDocs names a document the corpus does not hold.
var ErrUnknownDocument = fmt.Errorf("unknown document")

// ErrDocumentQuarantined is reported by GetErr and batch evaluation when
// a document's snapshot file failed format validation and was renamed to
// its quarantine name ("<file>.corrupt"): the document cannot be served
// until it is re-persisted (Swap + PersistDoc) or its file replaced.
var ErrDocumentQuarantined = corpus.ErrQuarantined

// ErrDocumentUnavailable is reported by GetErr and batch evaluation when
// a document's snapshot failed to load transiently (an I/O error): the
// corpus retries with exponential backoff and the document may become
// servable again without intervention.
var ErrDocumentUnavailable = corpus.ErrUnavailable

// CorpusOption configures NewCorpus.
type CorpusOption func(*corpusConfig)

type corpusConfig struct {
	maxBytes     int64
	onEvict      func(name string, doc *Document)
	onInvalidate func(name string)
	noFsync      bool
	retryBase    time.Duration
	retryMax     time.Duration
}

// WithMaxBytes sets the corpus's byte budget: insertions beyond it evict
// least-recently-used documents. n <= 0 (the default) disables eviction.
func WithMaxBytes(n int64) CorpusOption {
	return func(c *corpusConfig) { c.maxBytes = n }
}

// WithEvictionHook registers a callback invoked (outside the corpus lock)
// for every document that leaves the corpus with its contents in hand:
// budget eviction and explicit Remove. Swap replacements do not trigger
// it — the caller already receives the previous document from Swap.
func WithEvictionHook(fn func(name string, doc *Document)) CorpusOption {
	return func(c *corpusConfig) { c.onEvict = fn }
}

// WithInvalidationHook registers a callback invoked (outside the corpus
// lock) whenever cached results derived from the named document can no
// longer be trusted or retained: Swap replacement, Remove, budget
// eviction, and dehydration to a disk stub. It is the corpus-side feed
// for result caches — on every departure or replacement the hook fires
// with the document's name, regardless of whether the document's bytes
// were still resident. Hydration does NOT fire it: bringing a stub back
// into memory restores the same content under the same version.
func WithInvalidationHook(fn func(name string)) CorpusOption {
	return func(c *corpusConfig) { c.onInvalidate = fn }
}

// WithNoFsync disables the fsync calls in the persist path. Snapshot
// writes stay atomic with respect to readers — the rename still lands
// last — but lose power-loss durability: a crash shortly after
// PersistDoc may leave the old file, no file, or (on adversarial
// filesystems) a torn temp file that the next LoadDir sweeps. For tests
// and re-runnable bulk imports; production keeps fsync on.
func WithNoFsync() CorpusOption {
	return func(c *corpusConfig) { c.noFsync = true }
}

// WithRetryPolicy configures the hydration retry backoff: after a
// transient snapshot-load failure the document is retried no sooner than
// base, doubling per consecutive failure up to max. Non-positive values
// keep the defaults (250ms base, 30s max).
func WithRetryPolicy(base, max time.Duration) CorpusOption {
	return func(c *corpusConfig) { c.retryBase, c.retryMax = base, max }
}

// NewCorpus returns an empty corpus.
func NewCorpus(opts ...CorpusOption) *Corpus {
	var cfg corpusConfig
	for _, o := range opts {
		o(&cfg)
	}
	c := corpus.New()
	// Document aliases core.Document, so the hook passes through as-is;
	// SetBudget treats maxBytes <= 0 as "no eviction".
	c.SetBudget(cfg.maxBytes, cfg.onEvict)
	if cfg.onInvalidate != nil {
		c.SetInvalidationHook(cfg.onInvalidate)
	}
	if cfg.noFsync {
		c.SetNoSync(true)
	}
	if cfg.retryBase > 0 || cfg.retryMax > 0 {
		c.SetRetryPolicy(cfg.retryBase, cfg.retryMax)
	}
	return &Corpus{c: c}
}

// Add inserts doc under name; it fails with ErrCorpusDuplicate if the
// name is taken (Swap replaces instead) and on the empty name.
func (c *Corpus) Add(name string, doc *Document) error { return c.c.Add(name, doc) }

// AddTree indexes t (see Index) and adds the resulting document under
// name, returning it.
func (c *Corpus) AddTree(name string, t *Tree) (*Document, error) {
	doc := Index(t)
	if err := c.c.Add(name, doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// Swap inserts doc under name, replacing and returning the previous
// document under that name (nil if the name was free).
func (c *Corpus) Swap(name string, doc *Document) (*Document, error) {
	return c.c.Swap(name, doc)
}

// Remove deletes the named document, returning it (nil if absent).
func (c *Corpus) Remove(name string) *Document { return c.c.Remove(name) }

// Get returns the named document, counting as a use for LRU eviction.
func (c *Corpus) Get(name string) (*Document, bool) { return c.c.Get(name) }

// GetErr is Get with the failure reason: nil error on success, an error
// wrapping ErrUnknownDocument for names the corpus does not hold, and an
// error wrapping ErrDocumentQuarantined or ErrDocumentUnavailable for
// dehydrated entries whose snapshot cannot be loaded. A failing entry
// fails fast from tracked state — the bad file is not re-read on every
// call.
func (c *Corpus) GetErr(name string) (*Document, error) {
	doc, err := c.c.GetErr(name)
	if errors.Is(err, corpus.ErrUnknown) {
		return nil, fmt.Errorf("corpus: %q: %w", name, ErrUnknownDocument)
	}
	return doc, err
}

// Peek returns the named document and its accounted size — the
// insertion-time charge budgeting uses, so summing it over Names agrees
// with Bytes — without counting as a use. It is for listings, dashboards,
// and other read paths that must not promote documents in the LRU
// eviction order; only Get and batch evaluation snapshots count as uses.
func (c *Corpus) Peek(name string) (*Document, int64, bool) {
	return c.c.Peek(name)
}

// CorpusStat describes one corpus entry without hydrating it: the tree
// size (known even while the document is dehydrated), the accounted
// resident bytes (0 for a dehydrated entry), residency itself, and the
// entry's content version (see Version).
type CorpusStat = corpus.Stat

// Stat returns the named entry's metadata without touching the LRU clock
// and without hydrating dehydrated entries — the listing path for
// servers fronting a snapshot directory (Peek reports a nil document for
// dehydrated entries).
func (c *Corpus) Stat(name string) (CorpusStat, bool) { return c.c.Stat(name) }

// PersistDir writes every document's snapshot into dir (created if
// needed) — one file per document, the name percent-escaped — and marks
// the entries as disk-backed: from then on, byte-budget pressure
// dehydrates them back to stubs (rehydrated transparently on next use)
// instead of dropping them from the corpus. Returns the number of
// documents persisted. Failures are joined; the rest still persist.
func (c *Corpus) PersistDir(dir string) (int, error) { return c.c.PersistDir(dir) }

// PersistDoc persists the single named document into dir; see PersistDir.
func (c *Corpus) PersistDoc(dir, name string) error { return c.c.PersistDoc(dir, name) }

// Unpersist deletes the named document's snapshot file from dir and
// detaches the entry from it: a resident document becomes memory-only, a
// dehydrated one is removed from the corpus entirely. Removal is
// idempotent — a missing file is not an error.
func (c *Corpus) Unpersist(dir, name string) error { return c.c.Unpersist(dir, name) }

// LoadDir registers every snapshot file in dir as a dehydrated entry:
// only each file's meta header is read up front, and each document
// hydrates — one file read plus zero-copy pointer fixups, no XML parse,
// no index build — on its first Get or batch use, under the byte budget.
// Names already in the corpus are skipped (memory wins over disk).
// Returns the number of entries registered; unreadable snapshot files
// are reported in the joined error while the rest still register.
func (c *Corpus) LoadDir(dir string) (int, error) { return c.c.LoadDir(dir) }

// CorpusLoadReport is the full accounting of a LoadDirReport pass:
// stubs registered, quarantined files skipped (or newly quarantined),
// and stale temp files swept.
type CorpusLoadReport = corpus.LoadReport

// LoadDirReport is LoadDir with the full accounting: besides registering
// stubs it reports how many quarantined ("*.corrupt") files were
// skipped — including files quarantined during this pass because their
// header failed validation — and how many stale ".tmp-*" orphans from a
// crashed atomic write were deleted.
func (c *Corpus) LoadDirReport(dir string) (CorpusLoadReport, error) {
	return c.c.LoadDirReport(dir)
}

// CorpusPersistence summarizes the persistence tier's health: current
// stub / failing / quarantined entry counts plus cumulative hydration
// error, quarantine, and persist error counters.
type CorpusPersistence = corpus.PersistenceStats

// Persistence reports the corpus's persistence health counters.
func (c *Corpus) Persistence() CorpusPersistence { return c.c.PersistenceStats() }

// Version returns the named entry's content version: a corpus-wide
// monotonic counter stamped when the entry's content was established
// (Add, Swap, re-Add after Remove, or stub registration by LoadDir).
// Versions strictly increase across content changes and are STABLE
// across dehydrate/hydrate cycles — residency changes do not create new
// content — so (query fingerprint, name, version) is a sound cache key:
// a result cached under a version can be served until that version
// disappears, and a post-swap lookup can never match a pre-swap entry.
// It does not touch the LRU clock.
func (c *Corpus) Version(name string) (uint64, bool) { return c.c.Version(name) }

// Page evaluates one page of pq's answers on the named document — see
// PreparedQuery.Paginate for the pagination contract — with the cursor
// automatically bound to the entry's content version: Page appends
// WithDocVersion(Version(name)) after the caller's options, so a cursor
// minted here is rejected with ErrCursorStale after the document is
// swapped or re-added, and stays valid across dehydrate/hydrate cycles
// (residency does not change content). Counts as a use for LRU eviction;
// unknown or unloadable documents fail like GetErr.
func (c *Corpus) Page(pq *PreparedQuery, name string, opts ...EvalOption) (Page, error) {
	doc, err := c.GetErr(name)
	if err != nil {
		return Page{}, err
	}
	ver, _ := c.Version(name)
	opts = append(append([]EvalOption{}, opts...), WithDocVersion(ver))
	return pq.Paginate(doc, opts...)
}

// Hydrations returns the cumulative count of stub hydrations — documents
// loaded back from their snapshot files on demand — since construction.
func (c *Corpus) Hydrations() int64 { return c.c.Hydrations() }

// Len returns the number of documents in the corpus.
func (c *Corpus) Len() int { return c.c.Len() }

// Bytes returns the total accounted memory footprint in bytes.
func (c *Corpus) Bytes() int64 { return c.c.Bytes() }

// Names returns the document names in sorted order.
func (c *Corpus) Names() []string { return c.c.Names() }

// ---- batch evaluation -----------------------------------------------------

// BatchOption tunes one batch evaluation call.
type BatchOption func(*batchConfig)

type batchConfig struct {
	ctx       context.Context
	workers   int
	names     []string
	filter    func(string) bool
	maxTuples int
}

// WithBatchContext attaches a context to the batch: in-flight per-document
// evaluations observe cancellation at their next check (see WithContext)
// and report it in their result's Err; documents not yet dispatched when
// the context dies are skipped and the stream ends.
func WithBatchContext(ctx context.Context) BatchOption {
	return func(c *batchConfig) { c.ctx = ctx }
}

// WithBatchWorkers bounds the batch's worker pool. The default (and any
// n <= 0) is GOMAXPROCS; 1 evaluates documents sequentially on the
// consumer's goroutine. This is fan-out across documents — per-document
// enumeration parallelism is the prepared query's WithParallelism
// setting, and the two multiply, so servers typically set exactly one.
func WithBatchWorkers(n int) BatchOption {
	return func(c *batchConfig) { c.workers = n }
}

// WithDocs restricts the batch to exactly the named documents, evaluated
// in the given order. Names the corpus does not hold yield one result per
// query with Err wrapping ErrUnknownDocument. Zero names select zero
// documents — a dynamically built empty selection evaluates nothing, it
// does not fall back to the whole fleet.
func WithDocs(names ...string) BatchOption {
	return func(c *batchConfig) {
		if names == nil {
			names = []string{}
		}
		c.names = names
	}
}

// WithDocFilter restricts the batch to documents whose name passes the
// filter (applied to all documents, or to the WithDocs selection).
func WithDocFilter(fn func(name string) bool) BatchOption {
	return func(c *batchConfig) { c.filter = fn }
}

// WithBatchMaxTuples caps each document's tuple enumeration at n answers
// (Tuples/TuplesSet only; other modes ignore it). A capped document stops
// enumerating as soon as the cap is exceeded — the engine does the
// output-sensitive minimum of work and the result buffer stays bounded —
// and its TuplesResult carries Truncated = true with the first n tuples
// of the stream, sorted among themselves. An exactly-n answer relation is
// complete, not truncated. n <= 0 (the default) disables the cap.
//
// Capped enumeration streams on the batch worker's goroutine, so the
// per-document WithParallelism sharding does not apply under a cap (the
// across-document WithBatchWorkers fan-out is unaffected).
func WithBatchMaxTuples(n int) BatchOption {
	return func(c *batchConfig) { c.maxTuples = n }
}

// BoolResult is one document's outcome of a Boolean batch.
type BoolResult struct {
	// Doc is the document's corpus name.
	Doc string
	// Query indexes the query set of a *Set batch; 0 for single-query
	// batches.
	Query int
	// Sat reports Boolean satisfaction when Err is nil.
	Sat bool
	// Err is the per-document error: cancellation or ErrUnknownDocument.
	Err error
}

// NodesResult is one document's outcome of a monadic batch.
type NodesResult struct {
	Doc   string
	Query int
	// Nodes is the sorted answer node set when Err is nil.
	Nodes []NodeID
	// Err is the per-document error: cancellation, ErrUnknownDocument, or
	// ErrNotMonadic when the query's head is not unary.
	Err error
}

// TuplesResult is one document's outcome of a tuple-enumeration batch.
type TuplesResult struct {
	Doc   string
	Query int
	// Tuples is the sorted distinct answer relation when Err is nil (for
	// Boolean queries: one empty tuple if satisfiable). Under
	// WithBatchMaxTuples it holds at most that many tuples.
	Tuples [][]NodeID
	// Truncated reports that Tuples was cut at the WithBatchMaxTuples cap
	// — the document has more answers than returned.
	Truncated bool
	Err       error
}

// newBatchConfig folds the options.
func newBatchConfig(opts []BatchOption) batchConfig {
	var cfg batchConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// snapshot resolves the batch's documents and expands the job list; the
// snapshot touches LRU clocks under the corpus lock exactly once.
func (c *Corpus) snapshot(cfg batchConfig, queries int) (jobs []corpus.Job, missing []corpus.Miss) {
	docs, missing := c.c.Snapshot(cfg.names, cfg.filter)
	return corpus.Jobs(docs, queries), missing
}

// missingErr is the per-result error for a WithDocs name the snapshot
// could not resolve: names the corpus does not hold wrap
// ErrUnknownDocument; stubs that failed to hydrate carry their typed
// hydration error (wrapping ErrDocumentQuarantined / ErrDocumentUnavailable).
func missingErr(m corpus.Miss) error {
	if errors.Is(m.Err, corpus.ErrUnknown) {
		return fmt.Errorf("corpus: %q: %w", m.Name, ErrUnknownDocument)
	}
	return m.Err
}

// batchSeq is the shared skeleton behind the *Set methods (methods
// cannot be generic, so each wraps this free function): snapshot the
// document set, report missing WithDocs names as one error row per
// query, fan eval across the jobs with the bounded pool, and wrap each
// raw result into the public row type.
func batchSeq[T, R any](c *Corpus, queries int, opts []BatchOption,
	missingRow func(miss corpus.Miss, query int) R,
	eval func(ctx context.Context, j corpus.Job) (T, error),
	wrap func(corpus.Result[T]) R,
) iter.Seq[R] {
	cfg := newBatchConfig(opts)
	jobs, missing := c.snapshot(cfg, queries)
	return func(yield func(R) bool) {
		for _, m := range missing {
			for q := 0; q < queries; q++ {
				if !yield(missingRow(m, q)) {
					return
				}
			}
		}
		for r := range corpus.Run(cfg.ctx, cfg.workers, jobs, eval) {
			if !yield(wrap(r)) {
				return
			}
		}
	}
}

// Bool fans the prepared query across the corpus (all documents, or the
// WithDocs/WithDocFilter selection) with a bounded worker pool, streaming
// one BoolResult per document in completion order:
//
//	for r := range c.Bool(pq) {
//		if r.Err == nil && r.Sat { hits = append(hits, r.Doc) }
//	}
//
// Break out of the loop to cancel the remaining documents.
func (c *Corpus) Bool(pq *PreparedQuery, opts ...BatchOption) iter.Seq[BoolResult] {
	return c.BoolSet([]*PreparedQuery{pq}, opts...)
}

// BoolSet is Bool over a set of prepared queries: every (document, query)
// pair is evaluated, and each result's Query field indexes pqs.
func (c *Corpus) BoolSet(pqs []*PreparedQuery, opts ...BatchOption) iter.Seq[BoolResult] {
	return batchSeq(c, len(pqs), opts,
		func(m corpus.Miss, q int) BoolResult {
			return BoolResult{Doc: m.Name, Query: q, Err: missingErr(m)}
		},
		func(ctx context.Context, j corpus.Job) (bool, error) {
			pq := pqs[j.Query]
			return pq.p.BoolDoc(j.Doc.Doc, core.EnumOptions{Parallel: pq.parallel, Ctx: ctx})
		},
		func(r corpus.Result[bool]) BoolResult {
			return BoolResult{Doc: r.Doc, Query: r.Query, Sat: r.Value, Err: r.Err}
		})
}

// Nodes fans a monadic prepared query across the corpus, streaming one
// sorted answer node set per document; see Bool for the batch contract.
// Non-monadic queries report ErrNotMonadic in every result's Err.
func (c *Corpus) Nodes(pq *PreparedQuery, opts ...BatchOption) iter.Seq[NodesResult] {
	return c.NodesSet([]*PreparedQuery{pq}, opts...)
}

// NodesSet is Nodes over a set of prepared queries.
func (c *Corpus) NodesSet(pqs []*PreparedQuery, opts ...BatchOption) iter.Seq[NodesResult] {
	return batchSeq(c, len(pqs), opts,
		func(m corpus.Miss, q int) NodesResult {
			return NodesResult{Doc: m.Name, Query: q, Err: missingErr(m)}
		},
		func(ctx context.Context, j corpus.Job) ([]NodeID, error) {
			pq := pqs[j.Query]
			return pq.p.MonadicDoc(j.Doc.Doc, core.EnumOptions{Parallel: pq.parallel, Ctx: ctx})
		},
		func(r corpus.Result[[]NodeID]) NodesResult {
			return NodesResult{Doc: r.Doc, Query: r.Query, Nodes: r.Value, Err: r.Err}
		})
}

// Tuples fans the prepared query across the corpus, streaming one sorted
// distinct answer relation per document; see Bool for the batch contract.
func (c *Corpus) Tuples(pq *PreparedQuery, opts ...BatchOption) iter.Seq[TuplesResult] {
	return c.TuplesSet([]*PreparedQuery{pq}, opts...)
}

// cappedTuples is the internal eval payload of a tuples batch: the
// (possibly capped) relation plus the truncation marker.
type cappedTuples struct {
	tuples    [][]NodeID
	truncated bool
}

// TuplesSet is Tuples over a set of prepared queries.
func (c *Corpus) TuplesSet(pqs []*PreparedQuery, opts ...BatchOption) iter.Seq[TuplesResult] {
	maxTuples := newBatchConfig(opts).maxTuples
	return batchSeq(c, len(pqs), opts,
		func(m corpus.Miss, q int) TuplesResult {
			return TuplesResult{Doc: m.Name, Query: q, Err: missingErr(m)}
		},
		func(ctx context.Context, j corpus.Job) (cappedTuples, error) {
			pq := pqs[j.Query]
			if maxTuples <= 0 {
				v, err := pq.p.AllDoc(j.Doc.Doc, core.EnumOptions{Parallel: pq.parallel, Ctx: ctx})
				return cappedTuples{tuples: v}, err
			}
			// Capped: stream until one past the cap — an exactly-full
			// relation is complete, not truncated — then sort the prefix so
			// capped rows keep the sorted-relation shape.
			out := make([][]NodeID, 0, min(maxTuples, 64))
			truncated := false
			pq.p.ForEachTupleDoc(j.Doc.Doc, core.EnumOptions{Ctx: ctx}, func(t []NodeID) bool {
				if len(out) >= maxTuples {
					truncated = true
					return false
				}
				cp := make([]NodeID, len(t))
				copy(cp, t)
				out = append(out, cp)
				return true
			})
			// The streaming engine goes silent on cancellation; surface it
			// as the row error like the uncapped path does.
			if err := ctx.Err(); err != nil {
				return cappedTuples{}, err
			}
			sortTuples(out)
			return cappedTuples{tuples: out, truncated: truncated}, nil
		},
		func(r corpus.Result[cappedTuples]) TuplesResult {
			return TuplesResult{Doc: r.Doc, Query: r.Query, Tuples: r.Value.tuples,
				Truncated: r.Value.truncated, Err: r.Err}
		})
}

// sortTuples orders a tuple relation lexicographically by NodeID.
func sortTuples(ts [][]NodeID) {
	sort.Slice(ts, func(i, j int) bool { return tupleLess(ts[i], ts[j]) })
}

// tupleLess is the lexicographic tuple order.
func tupleLess(a, b []NodeID) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}
