package cqtrees

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/tree"
)

// randomQuery builds a random query over the given axes with nv variables,
// na binary atoms, labels on some variables, and 0..2 head variables.
func randomQuery(rng *rand.Rand, axes []axis.Axis, nv, na int, alphabet []string) *cq.Query {
	q := cq.New()
	vars := make([]cq.Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < na; i++ {
		x := rng.Intn(nv)
		y := rng.Intn(nv)
		if x == y {
			y = (y + 1) % nv
		}
		q.AddAtom(axes[rng.Intn(len(axes))], vars[x], vars[y])
	}
	for _, v := range vars {
		if rng.Float64() < 0.5 {
			q.AddLabel(alphabet[rng.Intn(len(alphabet))], v)
		}
	}
	switch rng.Intn(3) {
	case 1:
		q.SetHead(vars[rng.Intn(nv)])
	case 2:
		q.SetHead(vars[rng.Intn(nv)], vars[rng.Intn(nv)])
	}
	return q
}

// parityConfig pairs a signature with the strategies it can exercise.
type parityConfig struct {
	name string
	axes []axis.Axis
}

var parityConfigs = []parityConfig{
	// Tractable signature: cyclic draws hit the X-property engine,
	// forest-shaped draws the acyclic engine.
	{"tractable-vertical", []axis.Axis{axis.ChildPlus, axis.ChildStar}},
	{"tractable-following", []axis.Axis{axis.Following, axis.DocOrder}},
	// Intractable signatures: cyclic draws hit the backtracking engine.
	{"hard-child-childplus", []axis.Axis{axis.Child, axis.ChildPlus}},
	{"hard-child-following", []axis.Axis{axis.Child, axis.Following}},
	// Mixed bag including inverse axes.
	{"mixed", []axis.Axis{axis.Child, axis.NextSibling, axis.Parent, axis.PrevSiblingPlus}},
}

// TestPreparedMatchesOneShot is the prepare/execute parity property test:
// on random trees and random queries, Prepare(q).All(t) must equal the
// one-shot EvaluateAll(t, q) — recomputed with a fresh engine so the two
// paths share no cached plan — and both must match the brute-force oracle.
// All three strategies must be exercised.
func TestPreparedMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []string{"A", "B", "C"}
	hit := map[core.Strategy]int{}
	for trial := 0; trial < 140; trial++ {
		cfg := parityConfigs[trial%len(parityConfigs)]
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes:       1 + rng.Intn(11),
			MaxChildren: 3,
			Alphabet:    alphabet,
		})
		q := randomQuery(rng, cfg.axes, 2+rng.Intn(3), 1+rng.Intn(4), alphabet)
		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", cfg.name, err)
		}
		hit[pq.Plan().Strategy]++

		got := pq.All(tr)
		want := core.NewEngine().EvalAll(tr, q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s trial %d: prepared %v != one-shot %v\nq = %s\ntree = %s",
				cfg.name, trial, got, want, q, tr)
		}
		if ref := core.ReferenceEvalAll(tr, q); !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s trial %d: prepared %v != oracle %v\nq = %s\ntree = %s",
				cfg.name, trial, got, ref, q, tr)
		}
		// Re-evaluation on the same PreparedQuery (scratch reuse) and on a
		// second tree (tree-index invalidation) must stay consistent.
		if again := pq.All(tr); !reflect.DeepEqual(again, got) {
			t.Fatalf("%s trial %d: re-evaluation drifted: %v then %v", cfg.name, trial, got, again)
		}
		tr2 := tree.Random(rng, tree.RandomConfig{Nodes: 1 + rng.Intn(8), MaxChildren: 2, Alphabet: alphabet})
		if got2, want2 := pq.All(tr2), core.ReferenceEvalAll(tr2, q); !reflect.DeepEqual(got2, want2) {
			t.Fatalf("%s trial %d: second tree: prepared %v != oracle %v", cfg.name, trial, got2, want2)
		}
		if pq.Bool(tr) != (len(got) > 0) && len(q.Head) == 0 {
			t.Fatalf("%s trial %d: Bool disagrees with All", cfg.name, trial)
		}
	}
	for _, s := range []core.Strategy{core.StrategyAcyclic, core.StrategyXProperty, core.StrategyBacktrack} {
		if hit[s] == 0 {
			t.Errorf("parity test never exercised strategy %v", s)
		}
	}
	t.Logf("strategy coverage: %v", hit)
}

// TestPreparedConcurrent runs one PreparedQuery from many goroutines
// against several trees at once; under -race this proves the compiled
// query and its pooled scratch state are goroutine-safe.
func TestPreparedConcurrent(t *testing.T) {
	queries := map[string]string{
		"acyclic":   "Q(y) <- A(x), Child+(x, y), B(y)",
		"xproperty": "Q() <- A(x), Child+(x, y), B(y), Child*(y, z), Child+(x, z)",
		"backtrack": "Q(y) <- A(x), Child(x, y), B(y), Child+(x, z), C(z), Following(y, z)",
	}
	rng := rand.New(rand.NewSource(5))
	trees := []*Tree{
		tree.Random(rng, tree.DefaultRandomConfig(120)),
		tree.Random(rng, tree.DefaultRandomConfig(60)),
		MustParseTree("A(B,C(B))"),
	}
	for name, src := range queries {
		t.Run(name, func(t *testing.T) {
			pq := MustCompile(src)
			want := make([][][]NodeID, len(trees))
			for i, tr := range trees {
				want[i] = pq.All(tr)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for it := 0; it < 20; it++ {
						i := (g + it) % len(trees)
						if got := pq.All(trees[i]); !reflect.DeepEqual(got, want[i]) {
							errs <- fmt.Errorf("goroutine %d: tree %d: got %v, want %v", g, i, got, want[i])
							return
						}
						if got := pq.Bool(trees[i]); got != (len(want[i]) > 0) {
							errs <- fmt.Errorf("goroutine %d: tree %d: Bool = %v", g, i, got)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestSharedEngineFacade checks that the legacy one-shot functions (now
// thin wrappers over a shared plan-cached engine) behave identically
// across repeated and concurrent calls.
func TestSharedEngineFacade(t *testing.T) {
	tr := MustParseTree("A(B,C(B,A(B)))")
	q := MustParseQuery("Q(y) <- A(x), Child+(x, y), B(y)")
	first := EvaluateAll(tr, q)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if got := EvaluateAll(tr, q); !reflect.DeepEqual(got, first) {
					t.Errorf("shared engine drifted: %v vs %v", got, first)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !Evaluate(tr, q) {
		t.Error("Evaluate should hold")
	}
	if got := EvaluateNodes(tr, q); len(got) != len(first) {
		t.Errorf("EvaluateNodes = %v", got)
	}
}

// TestPreparedPlanAndIntrospection covers Plan/Query/String and the
// Compile error paths.
func TestPreparedPlanAndIntrospection(t *testing.T) {
	pq := MustCompile("Q(y) <- A(x), Child+(x, y), B(y)")
	if pq.Plan().Strategy != core.StrategyAcyclic {
		t.Errorf("plan = %v", pq.Plan())
	}
	if pq.Query().NumVars() != 2 {
		t.Errorf("NumVars = %d", pq.Query().NumVars())
	}
	if pq.String() == "" {
		t.Error("empty String()")
	}
	if _, err := Compile("not a query"); err == nil {
		t.Error("Compile should fail on garbage")
	}
	if _, err := Prepare(nil); err == nil {
		t.Error("Prepare(nil) should fail")
	}
}

// TestFingerprintInjective: labels are arbitrary strings under
// programmatic construction, so the plan-cache key must not collide when
// a label contains the encoding's delimiters. (Regression: the old
// CanonicalKey-based fingerprint mapped labels {A@1, B@2} and the single
// label "A/1;B"@2 to the same key, making the shared cache serve one
// query's plan for the other.)
func TestFingerprintInjective(t *testing.T) {
	q1 := cq.New()
	x, y, z := q1.AddVar("x"), q1.AddVar("y"), q1.AddVar("z")
	q1.AddAtom(axis.Child, x, y)
	q1.AddLabel("A", y)
	q1.AddLabel("B", z)

	q2 := cq.New()
	x2, y2, z2 := q2.AddVar("x"), q2.AddVar("y"), q2.AddVar("z")
	q2.AddAtom(axis.Child, x2, y2)
	_ = y2
	q2.AddLabel("A/1;B", z2)

	if q1.Fingerprint() == q2.Fingerprint() {
		t.Fatalf("distinct queries share a fingerprint: %q", q1.Fingerprint())
	}
	// And the shared engine must answer them independently.
	tr := MustParseTree("A(A,B)")
	if Evaluate(tr, q1) == Evaluate(tr, q2) {
		t.Fatalf("q1 (satisfiable) and q2 (label %q never occurs) should differ", "A/1;B")
	}
}

// TestPreparedImmuneToQueryMutation: mutating the source query after
// Prepare must not affect the compiled query.
func TestPreparedImmuneToQueryMutation(t *testing.T) {
	tr := MustParseTree("A(B,C(B))")
	q := MustParseQuery("Q(y) <- A(x), Child+(x, y), B(y)")
	pq := MustPrepare(q)
	before := pq.All(tr)
	q.AddLabel("Z", 0) // would make the query unsatisfiable
	if after := pq.All(tr); !reflect.DeepEqual(after, before) {
		t.Errorf("prepared query affected by mutation: %v vs %v", after, before)
	}
}
