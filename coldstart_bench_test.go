package cqtrees

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// The cold-start benchmarks measure what a process restart costs per
// document: the historical path (XML parse + single-pass index build)
// against the snapshot path (one aligned read + zero-copy pointer
// fixups). Names follow the slow/fast suffix convention scripts/bench.sh
// pairs up (parse vs snapshot, like probe vs kernel), so the derived
// speedup lands in the BENCH JSON and scripts/perfgate.sh enforces its
// floor. Both paths self-check (node counts and query parity) before
// timing — a correctness regression fails the benchmark, not just the
// numbers.

// randXML generates a deterministic random XML document with exactly n
// elements from a three-tag alphabet, fan-out <= 3.
func randXML(rng *rand.Rand, n int) string {
	var sb strings.Builder
	tags := []string{"a", "b", "c"}
	remaining := n - 1 // the root consumes one element
	var emit func(depth int)
	emit = func(depth int) {
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		if depth < 400 {
			for k, kids := 0, rng.Intn(4); k < kids && remaining > 0; k++ {
				remaining--
				emit(depth + 1)
			}
		}
		sb.WriteString("</" + tag + ">")
	}
	sb.WriteString("<a>")
	for remaining > 0 {
		remaining--
		emit(1)
	}
	sb.WriteString("</a>")
	return sb.String()
}

// coldStartQuery exercises all label sets the alphabet produces.
var coldStartQuery = "Q(y) <- a(x), Child+(x, y), b(y)"

// BenchmarkColdStart: one document, parse+index vs snapshot load. The
// snapshot bytes come from snapshot-format-aligned memory (as ReadFile
// would produce), so the fast leg measures the zero-copy path the server
// actually runs on restart.
func BenchmarkColdStart(b *testing.B) {
	for _, n := range []int{1000, 20000, 200000} {
		rng := rand.New(rand.NewSource(int64(n)))
		xml := randXML(rng, n)
		t, err := ParseXML(strings.NewReader(xml))
		if err != nil {
			b.Fatal(err)
		}
		doc := Index(t)
		if doc.Len() != n {
			b.Fatalf("setup: %d nodes, want %d", doc.Len(), n)
		}
		// Round the snapshot through ReadFile so the timed load runs on
		// 8-byte-aligned input — the zero-copy path a real restart takes.
		path := filepath.Join(b.TempDir(), "doc.cqs")
		if err := SaveDocumentFile(path, doc); err != nil {
			b.Fatal(err)
		}
		data, err := snapshot.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}

		// Self-check before timing: the snapshot-loaded document answers
		// exactly like the parsed+indexed one.
		pq := MustCompile(coldStartQuery)
		loaded, err := LoadDocument(data)
		if err != nil {
			b.Fatal(err)
		}
		want, err := pq.NodesErr(doc)
		if err != nil {
			b.Fatal(err)
		}
		if got, _ := pq.NodesErr(loaded); !reflect.DeepEqual(got, want) {
			b.Fatalf("nodes=%d: snapshot-loaded answers differ", n)
		}

		b.Run(fmt.Sprintf("nodes=%d/parse", n), func(b *testing.B) {
			b.SetBytes(int64(len(xml)))
			for i := 0; i < b.N; i++ {
				t, err := ParseXML(strings.NewReader(xml))
				if err != nil {
					b.Fatal(err)
				}
				if doc := Index(t); doc.Len() != n {
					b.Fatalf("parsed %d nodes, want %d", doc.Len(), n)
				}
			}
		})
		b.Run(fmt.Sprintf("nodes=%d/snapshot", n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				doc, err := LoadDocument(data)
				if err != nil {
					b.Fatal(err)
				}
				if doc.Len() != n {
					b.Fatalf("loaded %d nodes, want %d", doc.Len(), n)
				}
			}
		})
	}
}

// BenchmarkColdStartCorpus: opening a 1000-document corpus. Two measured
// shapes, one shared setup:
//
//   - open: time until the corpus answers its first query. The parse
//     path must parse+index every XML source before anything is
//     servable; the snapshot path registers stubs from 48-byte headers
//     (LoadDir) and hydrates only the one document the query touches.
//     This is the restart path cqserve -data takes.
//   - full: everything resident. The snapshot path hydrates all 1000
//     documents — its worst case, every byte read and fixed up — and
//     still has to beat parsing by the gated margin.
func BenchmarkColdStartCorpus(b *testing.B) {
	const docs, nodes = 1000, 500
	rng := rand.New(rand.NewSource(7))
	xmls := make([]string, docs)
	names := make([]string, docs)
	dir := b.TempDir()
	seed := NewCorpus()
	for i := range xmls {
		xmls[i] = randXML(rng, nodes)
		names[i] = fmt.Sprintf("doc%03d", i)
		t, err := ParseXML(strings.NewReader(xmls[i]))
		if err != nil {
			b.Fatal(err)
		}
		if err := seed.Add(names[i], Index(t)); err != nil {
			b.Fatal(err)
		}
	}
	if n, err := seed.PersistDir(dir); err != nil || n != docs {
		b.Fatalf("PersistDir = %d, %v", n, err)
	}

	pq := MustCompile(coldStartQuery)
	firstAnswer := func(c *Corpus) int {
		doc, ok := c.Get(names[0])
		if !ok {
			b.Fatal("first document missing")
		}
		nodes, err := pq.NodesErr(doc)
		if err != nil {
			b.Fatal(err)
		}
		return len(nodes)
	}
	// Self-check: a batch over a freshly opened corpus matches the seed.
	count := func(c *Corpus) int {
		sat := 0
		for r := range c.Bool(pq, WithBatchWorkers(1)) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if r.Sat {
				sat++
			}
		}
		return sat
	}
	reopened := NewCorpus()
	if _, err := reopened.LoadDir(dir); err != nil {
		b.Fatal(err)
	}
	if got, want := count(reopened), count(seed); got != want {
		b.Fatalf("reopened corpus: %d satisfied docs, want %d", got, want)
	}
	wantFirst := firstAnswer(seed)

	parseAll := func(b *testing.B) *Corpus {
		c := NewCorpus()
		for j, x := range xmls {
			t, err := ParseXML(strings.NewReader(x))
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Add(names[j], Index(t)); err != nil {
				b.Fatal(err)
			}
		}
		if c.Len() != docs {
			b.Fatalf("built %d docs", c.Len())
		}
		return c
	}
	b.Run(fmt.Sprintf("docs=%d/open/parse", docs), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := firstAnswer(parseAll(b)); got != wantFirst {
				b.Fatalf("first answer: %d nodes, want %d", got, wantFirst)
			}
		}
	})
	b.Run(fmt.Sprintf("docs=%d/open/snapshot", docs), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCorpus()
			if n, err := c.LoadDir(dir); err != nil || n != docs {
				b.Fatalf("LoadDir = %d, %v", n, err)
			}
			if got := firstAnswer(c); got != wantFirst {
				b.Fatalf("first answer: %d nodes, want %d", got, wantFirst)
			}
		}
	})
	b.Run(fmt.Sprintf("docs=%d/full/parse", docs), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parseAll(b)
		}
	})
	b.Run(fmt.Sprintf("docs=%d/full/snapshot", docs), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCorpus()
			if n, err := c.LoadDir(dir); err != nil || n != docs {
				b.Fatalf("LoadDir = %d, %v", n, err)
			}
			for _, name := range names { // hydrate everything
				if _, ok := c.Get(name); !ok {
					b.Fatalf("hydrate %s failed", name)
				}
			}
		}
	})
}
