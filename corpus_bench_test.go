package cqtrees

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// BenchmarkCorpus measures batched multi-document evaluation: a fleet of
// indexed documents, a prepared query per strategy, fanned across the
// fleet with a bounded worker pool. The workers axis shows the batch
// scaling WithBatchWorkers buys (near-linear until the fleet or the cores
// run out; single-CPU containers show flat lines — the parity self-check
// still runs).
//
// Every iteration self-checks answer parity against sequential
// per-document evaluation (b.Fatalf on any divergence), so the CI smoke
// run of this family guards the fan-out machinery: no document dropped or
// duplicated, no cross-worker result corruption.
func BenchmarkCorpus(b *testing.B) {
	const fleet, nodes = 12, 1500
	rng := rand.New(rand.NewSource(404))
	c := NewCorpus()
	for i := 0; i < fleet; i++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: nodes, MaxChildren: 4, Alphabet: []string{"A", "B", "C", "D"},
		})
		if err := c.Add(fmt.Sprintf("doc%02d", i), Index(tr)); err != nil {
			b.Fatal(err)
		}
	}

	for _, qc := range []struct{ name, src string }{
		{"acyclic", strategyQueries["acyclic"]},
		{"xproperty", strategyQueries["xproperty"]},
	} {
		pq := MustCompile(qc.src)

		// Sequential ground truth, computed once per query outside timing.
		want := map[string]int{}
		total := 0
		for _, name := range c.Names() {
			doc, _ := c.Get(name)
			tuples, err := pq.AllErr(doc)
			if err != nil {
				b.Fatalf("%s/%s: %v", qc.name, name, err)
			}
			want[name] = len(tuples)
			total += len(tuples)
		}
		if total == 0 {
			b.Fatalf("%s: degenerate workload, zero answers across the fleet", qc.name)
		}

		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("q=%s/docs=%d/workers=%d", qc.name, fleet, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					got := 0
					seen := 0
					for r := range c.Tuples(pq, WithBatchWorkers(workers)) {
						if r.Err != nil {
							b.Fatalf("%s: %v", r.Doc, r.Err)
						}
						if len(r.Tuples) != want[r.Doc] {
							b.Fatalf("parity: %s got %d tuples, sequential got %d",
								r.Doc, len(r.Tuples), want[r.Doc])
						}
						got += len(r.Tuples)
						seen++
					}
					if seen != fleet || got != total {
						b.Fatalf("parity: %d docs / %d tuples, want %d / %d", seen, got, fleet, total)
					}
				}
				b.ReportMetric(float64(fleet)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
			})
		}
	}
}
