package cqtrees

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
)

// orderedQueries covers all three evaluation strategies with a binary head
// (so lexicographic tie-breaking across positions is actually exercised).
var orderedQueries = map[string]string{
	"acyclic":   "Q(x, y) <- A(x), Child+(x, y), B(y)",
	"xproperty": "Q(x, y) <- A(x), Child+(x, y), B(y), Child+(y, z), C(z), Child+(x, z)",
	"backtrack": "Q(x, y) <- A(x), Child(x, y), B(y), Child+(x, z), C(z), Following(y, z)",
}

// sortByDirs is the test oracle: sort tuples by per-position pre rank
// under dirs, matching the engine's ordered key.
func sortByDirs(t *Tree, dirs []Dir, tuples [][]NodeID) {
	less := func(a, b []NodeID) bool {
		for k := range a {
			ra, rb := t.Pre(a[k]), t.Pre(b[k])
			if ra == rb {
				continue
			}
			if dirs[k] == Desc {
				return ra > rb
			}
			return ra < rb
		}
		return false
	}
	for i := 1; i < len(tuples); i++ {
		for j := i; j > 0 && less(tuples[j], tuples[j-1]); j-- {
			tuples[j], tuples[j-1] = tuples[j-1], tuples[j]
		}
	}
}

// TestOrderedEnumeration: for every strategy and every direction
// combination, WithOrder must yield exactly the unordered answer set
// re-sorted by the per-position document-order key.
func TestOrderedEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	combos := [][]Dir{{Asc, Asc}, {Asc, Desc}, {Desc, Asc}, {Desc, Desc}}
	hit := map[core.Strategy]bool{}
	for name, src := range orderedQueries {
		t.Run(name, func(t *testing.T) {
			pq := MustCompile(src)
			hit[pq.Plan().Strategy] = true
			for trial := 0; trial < 20; trial++ {
				tr := tree.Random(rng, tree.RandomConfig{Nodes: 60 + trial*10, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
				doc := Index(tr)
				base, err := pq.AllErr(doc)
				if err != nil {
					t.Fatal(err)
				}
				for _, dirs := range combos {
					want := make([][]NodeID, len(base))
					copy(want, base)
					sortByDirs(tr, dirs, want)
					got, err := pq.AllErr(doc, WithOrder(dirs...))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
						t.Fatalf("trial %d dirs %v: ordered AllErr\n got %v\nwant %v\ntree %s", trial, dirs, got, want, tr)
					}
				}
			}
		})
	}
	for _, s := range []core.Strategy{core.StrategyAcyclic, core.StrategyXProperty, core.StrategyBacktrack} {
		if !hit[s] {
			t.Errorf("ordered enumeration never exercised strategy %v", s)
		}
	}
}

// TestOrderPadsAndRejects: short specs pad ascending, WithOrder() alone is
// all-ascending, and over-long specs fail with ErrOrderArity across the
// error-reporting tiers while the iterators just end.
func TestOrderPadsAndRejects(t *testing.T) {
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	doc := Index(MustParseTree("A(B,A(B,B),B)"))
	full, err := pq.AllErr(doc, WithOrder(Asc, Asc))
	if err != nil {
		t.Fatal(err)
	}
	padded, err := pq.AllErr(doc, WithOrder(Asc))
	if err != nil {
		t.Fatal(err)
	}
	bare, err := pq.AllErr(doc, WithOrder())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, padded) || !reflect.DeepEqual(full, bare) {
		t.Fatalf("padding drift: full %v padded %v bare %v", full, padded, bare)
	}
	if _, err := pq.AllErr(doc, WithOrder(Asc, Asc, Asc)); !errors.Is(err, ErrOrderArity) {
		t.Fatalf("over-long order spec: got %v, want ErrOrderArity", err)
	}
	if _, err := pq.BoolErr(doc, WithOrder(Asc, Asc, Asc)); !errors.Is(err, ErrOrderArity) {
		t.Fatalf("BoolErr over-long order spec: got %v, want ErrOrderArity", err)
	}
	n := 0
	for range pq.Tuples(doc, WithOrder(Asc, Asc, Asc)) {
		n++
	}
	if n != 0 {
		t.Fatalf("Tuples with invalid order yielded %d tuples, want 0", n)
	}
}

// TestLimitOffset: WithLimit takes a prefix, WithOffset drops one, both
// compose, and an offset past the end yields empty — on the ordered path
// and the unordered one.
func TestLimitOffset(t *testing.T) {
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	rng := rand.New(rand.NewSource(7))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 120, MaxChildren: 3, Alphabet: []string{"A", "B"}})
	doc := Index(tr)
	all, err := pq.AllErr(doc, WithOrder())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("want >= 10 answers, got %d", len(all))
	}
	for _, tc := range []struct{ limit, offset int }{
		{3, 0}, {0, 4}, {5, 2}, {len(all), 0}, {3, len(all)}, {3, len(all) + 10},
	} {
		got, err := pq.AllErr(doc, WithOrder(), WithLimit(tc.limit), WithOffset(tc.offset))
		if err != nil {
			t.Fatal(err)
		}
		want := all
		if tc.offset >= len(want) {
			want = nil
		} else {
			want = want[tc.offset:]
		}
		if tc.limit > 0 && tc.limit < len(want) {
			want = want[:tc.limit]
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("limit %d offset %d: got %v want %v", tc.limit, tc.offset, got, want)
		}
	}
	// Unordered limit: a prefix of some complete enumeration — verify
	// count and membership.
	set := map[string]bool{}
	for _, tup := range all {
		set[fmt.Sprint(tup)] = true
	}
	lim, err := pq.AllErr(doc, WithLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(lim) != 5 {
		t.Fatalf("unordered WithLimit(5): got %d tuples", len(lim))
	}
	for _, tup := range lim {
		if !set[fmt.Sprint(tup)] {
			t.Fatalf("unordered limit returned non-answer %v", tup)
		}
	}
}

// TestPaginateWalk: walking pages via cursors reproduces the one-shot
// ordered enumeration exactly for every strategy, every page size —
// including page sizes that divide the total exactly (the final page must
// be full and mint no cursor).
func TestPaginateWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, src := range orderedQueries {
		t.Run(name, func(t *testing.T) {
			pq := MustCompile(src)
			tr := tree.Random(rng, tree.RandomConfig{Nodes: 150, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
			doc := Index(tr)
			want, err := pq.AllErr(doc, WithOrder(Asc, Desc))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) < 6 {
				t.Skipf("only %d answers; need a few pages", len(want))
			}
			sizes := []int{1, 2, 3, len(want), len(want) + 7}
			// A divisor of the total, to hit the exact-boundary case.
			for d := 2; d < len(want); d++ {
				if len(want)%d == 0 {
					sizes = append(sizes, d)
					break
				}
			}
			for _, size := range sizes {
				var got [][]NodeID
				cursor := ""
				pages := 0
				for {
					opts := []EvalOption{WithOrder(Asc, Desc), WithLimit(size)}
					if cursor != "" {
						opts = append(opts, WithCursor(cursor))
					}
					page, err := pq.Paginate(doc, opts...)
					if err != nil {
						t.Fatalf("size %d page %d: %v", size, pages, err)
					}
					got = append(got, page.Tuples...)
					pages++
					if page.Next == "" {
						break
					}
					if len(page.Tuples) != size {
						t.Fatalf("size %d: truncated page had %d tuples", size, len(page.Tuples))
					}
					cursor = page.Next
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("size %d: paged union != one-shot\n got %v\nwant %v", size, got, want)
				}
				wantPages := (len(want) + size - 1) / size
				if pages != wantPages {
					t.Fatalf("size %d: walked %d pages, want %d", size, pages, wantPages)
				}
			}
		})
	}
}

// TestPaginateDefaults: no order requested means all-ascending document
// order; no limit means DefaultPageSize; 0-ary queries are rejected.
func TestPaginateDefaults(t *testing.T) {
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	rng := rand.New(rand.NewSource(3))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 400, MaxChildren: 2, Alphabet: []string{"A", "B"}})
	doc := Index(tr)
	want, err := pq.AllErr(doc, WithOrder())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) <= DefaultPageSize {
		t.Fatalf("want > %d answers, got %d", DefaultPageSize, len(want))
	}
	page, err := pq.Paginate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Tuples) != DefaultPageSize || page.Next == "" {
		t.Fatalf("default page: %d tuples, next %q", len(page.Tuples), page.Next)
	}
	if !reflect.DeepEqual(page.Tuples, want[:DefaultPageSize]) {
		t.Fatal("default page is not the all-ascending prefix")
	}
	boolq := MustCompile("Q() <- A(x), Child+(x, y), B(y)")
	if _, err := boolq.Paginate(doc); !errors.Is(err, ErrOrderArity) {
		t.Fatalf("0-ary Paginate: got %v, want ErrOrderArity", err)
	}
}

// TestCursorRejections: the three typed failure modes, plus offset
// composition and order adoption from the cursor.
func TestCursorRejections(t *testing.T) {
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	other := MustCompile("Q(x, y) <- A(x), Child+(x, y), C(y)")
	rng := rand.New(rand.NewSource(5))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 120, MaxChildren: 3, Alphabet: []string{"A", "B", "C"}})
	doc := Index(tr)
	first, err := pq.Paginate(doc, WithLimit(2), WithOrder(Desc))
	if err != nil {
		t.Fatal(err)
	}
	if first.Next == "" {
		t.Fatal("first page not truncated; enlarge the tree")
	}

	// Malformed tokens.
	for _, tok := range []string{"", "!!!", "AAAA", first.Next + "AAAA", first.Next[:len(first.Next)-2]} {
		if _, err := pq.Paginate(doc, WithCursor(tok)); !errors.Is(err, ErrCursorMalformed) {
			t.Fatalf("token %q: got %v, want ErrCursorMalformed", tok, err)
		}
	}
	// Cursor from a different query.
	if _, err := other.Paginate(doc, WithCursor(first.Next)); !errors.Is(err, ErrCursorMismatch) {
		t.Fatalf("foreign cursor: got %v, want ErrCursorMismatch", err)
	}
	// Explicit order disagreeing with the cursor's.
	if _, err := pq.Paginate(doc, WithOrder(Asc, Asc), WithCursor(first.Next)); !errors.Is(err, ErrCursorMismatch) {
		t.Fatalf("order mismatch: got %v, want ErrCursorMismatch", err)
	}
	// Stale version.
	if _, err := pq.Paginate(doc, WithCursor(first.Next), WithDocVersion(999)); !errors.Is(err, ErrCursorStale) {
		t.Fatalf("stale cursor: got %v, want ErrCursorStale", err)
	}
	// The cursor carries its order: resuming without WithOrder continues
	// the Desc,Asc stream.
	rest, err := pq.Paginate(doc, WithCursor(first.Next), WithLimit(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	all, err := pq.AllErr(doc, WithOrder(Desc))
	if err != nil {
		t.Fatal(err)
	}
	if want := all[2:]; !reflect.DeepEqual(rest.Tuples, want) && !(len(rest.Tuples) == 0 && len(want) == 0) {
		t.Fatalf("cursor-carried order: got %v want %v", rest.Tuples, want)
	}
	// WithOffset composes with a cursor (applied after the resume point).
	off, err := pq.Paginate(doc, WithCursor(first.Next), WithOffset(1), WithLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) > 3 && !reflect.DeepEqual(off.Tuples, all[3:4]) {
		t.Fatalf("cursor+offset: got %v want %v", off.Tuples, all[3:4])
	}
}

// TestCorpusPageVersioning: Corpus.Page binds cursors to content versions —
// a swap invalidates outstanding cursors (ErrCursorStale), removal turns
// them into unknown-document errors, and dehydrate/hydrate does NOT
// invalidate (residency is not content).
func TestCorpusPageVersioning(t *testing.T) {
	pq := MustCompile("Q(x, y) <- A(x), Child+(x, y), B(y)")
	rng := rand.New(rand.NewSource(11))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 120, MaxChildren: 3, Alphabet: []string{"A", "B"}})
	c := NewCorpus()
	if err := c.Add("d", Index(tr)); err != nil {
		t.Fatal(err)
	}
	first, err := c.Page(pq, "d", WithLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	if first.Next == "" {
		t.Fatal("first page not truncated; enlarge the tree")
	}
	// Same content: resume works.
	if _, err := c.Page(pq, "d", WithCursor(first.Next)); err != nil {
		t.Fatalf("resume on unchanged doc: %v", err)
	}
	// Dehydrate/hydrate: version stable, cursor still valid.
	dir := t.TempDir()
	if err := c.PersistDoc(dir, "d"); err != nil {
		t.Fatal(err)
	}
	c2 := NewCorpus()
	if _, err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	// The re-loaded corpus re-stamps versions, so re-mint there and cycle.
	p2, err := c2.Page(pq, "d", WithLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := c2.Version("d")
	if _, err := c2.PersistDir(dir); err != nil {
		t.Fatal(err)
	}
	if after, _ := c2.Version("d"); after != before {
		t.Fatalf("version changed across persist: %d -> %d", before, after)
	}
	if _, err := c2.Page(pq, "d", WithCursor(p2.Next)); err != nil {
		t.Fatalf("resume after persist: %v", err)
	}
	// Swap: content changed, cursor stale.
	if _, err := c.Swap("d", Index(MustParseTree("A(B,B)"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Page(pq, "d", WithCursor(first.Next)); !errors.Is(err, ErrCursorStale) {
		t.Fatalf("post-swap resume: got %v, want ErrCursorStale", err)
	}
	// Remove: unknown document.
	c.Remove("d")
	if _, err := c.Page(pq, "d", WithCursor(first.Next)); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("post-remove resume: got %v, want ErrUnknownDocument", err)
	}
}

// TestCursorRoundTrip: encode/decode is the identity on valid cursors.
func TestCursorRoundTrip(t *testing.T) {
	cases := []cursor{
		{qhash: 0, version: 0, dirs: []Dir{}, ranks: []int32{}},
		{qhash: 1, version: 7, dirs: []Dir{Asc}, ranks: []int32{0}},
		{qhash: ^uint64(0), version: ^uint64(0), dirs: []Dir{Desc, Asc, Desc}, ranks: []int32{5, 0, 1<<31 - 1}},
	}
	for i, c := range cases {
		got, err := decodeCursor(encodeCursor(c))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.qhash != c.qhash || got.version != c.version ||
			!reflect.DeepEqual(got.dirs, c.dirs) || !reflect.DeepEqual(got.ranks, c.ranks) {
			t.Fatalf("case %d: round trip drift: %+v -> %+v", i, c, got)
		}
	}
}
